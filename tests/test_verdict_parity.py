"""Verdict-mode parity: ``mode="verdict"`` verdicts == ``mode="exact"``.

The verdict pipeline (ISSUE 4) buys its ~3x campaign throughput from three
places -- deadline-ceiling early exits inside the inner fixed points,
pre-filters that classify easy systems without the holistic loop, and
monotone level pruning along utilization-scaled sweep chains.  None of them
may ever flip a verdict.  This suite pins that contract:

* a property sweep over 200+ generated systems asserting verdict equality
  (``analyze`` and ``is_schedulable``) across shapes, depths and levels;
* the two structural properties the early exits lean on, asserted on the
  exact analysis itself: worst-case response times are non-decreasing
  along every precedence chain, and verdicts are monotone along a
  utilization-scaled chain;
* campaign-level parity through the pruning/bisection path, the sharded
  path and truncate-plus-resume (including the inferred-verdict provenance
  extras);
* pins that exact-mode accounting is unchanged from PR 3 (the verdict
  machinery must be invisible when ``mode="exact"``).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze,
    is_schedulable,
    utilization_prefilter,
)
from repro.batch import (
    Campaign,
    CampaignSpec,
    linspace_levels,
    merge_campaign_results,
    resolve_method,
)
from repro.gen import RandomSystemSpec, random_system
from repro.gen.random_transactions import scale_system_utilization
from repro.util.fixedpoint import (
    FixedPointCeilingHit,
    fixed_point_stats,
    iterate_fixed_point,
)

GS = AnalysisConfig(method="reduced", update="gauss_seidel")
GS_VERDICT = AnalysisConfig(
    method="reduced", update="gauss_seidel", mode="verdict"
)


def _systems():
    """200+ generated systems spanning shapes, depths and utilizations."""
    out = []
    for seed in range(30):
        base = random_system(
            RandomSystemSpec(
                n_platforms=3,
                n_transactions=4,
                tasks_per_transaction=(2, 4),
                utilization=0.3,
            ),
            seed=seed,
        )
        for level in (0.35, 0.6, 0.85, 1.05):
            out.append(scale_system_utilization(base, level / 0.3))
    for seed in range(30):
        base = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 3),
                utilization=0.4,
            ),
            seed=seed,
        )
        for level in (0.4, 0.75, 0.95):
            out.append(scale_system_utilization(base, level / 0.4))
    return out


class TestVerdictParityProperty:
    def test_verdicts_identical_over_200_systems(self):
        systems = _systems()
        assert len(systems) >= 200
        mismatches = [
            i
            for i, system in enumerate(systems)
            if analyze(system, config=GS_VERDICT).schedulable
            != analyze(system, config=GS).schedulable
        ]
        assert mismatches == []

    def test_is_schedulable_delegates_to_verdict_pipeline(self):
        system = _systems()[0]
        before = fixed_point_stats()
        verdict = is_schedulable(system)
        after = fixed_point_stats().delta(before)
        # The verdict pipeline fingerprint: either a pre-filter classified
        # the system or an early-exit/holistic verdict run happened; in
        # every case the answer matches the exact analysis.
        assert verdict == analyze(system, config=GS).schedulable
        assert (
            after.prefilter_accepts
            + after.prefilter_rejects
            + after.solves
        ) > 0

    def test_is_schedulable_respects_explicit_exact_config(self):
        """An explicit exact-mode config must not be silently flipped to
        the verdict pipeline (its pre-filters/early exits would skew any
        cost A/B run through this API)."""
        # Shape where the verdict pipeline's fingerprint is unmistakable:
        # single-task transactions are always pre-filter-classified.
        system = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 1),
                utilization=0.3,
            ),
            seed=1,
        )
        before = fixed_point_stats()
        assert is_schedulable(system, config=GS)
        delta = fixed_point_stats().delta(before)
        assert delta.prefilter_accepts == 0
        assert delta.prefilter_rejects == 0
        assert delta.ceiling_exits == 0
        # And an explicit mode on top of a config still wins.
        before = fixed_point_stats()
        assert is_schedulable(system, config=GS, mode="verdict")
        assert fixed_point_stats().delta(before).prefilter_accepts == 1

    def test_is_schedulable_rejects_unknown_kwargs(self):
        system = _systems()[0]
        with pytest.raises(TypeError, match="metod"):
            is_schedulable(system, metod="exact")

    def test_jacobi_and_exact_method_verdict_parity(self):
        """Verdict mode composes with the other config axes too."""
        for seed in (0, 1, 2, 3):
            base = random_system(
                RandomSystemSpec(
                    n_platforms=2,
                    n_transactions=2,
                    tasks_per_transaction=(1, 2),
                    utilization=0.5,
                ),
                seed=seed,
            )
            for level in (0.5, 0.9, 1.2):
                system = scale_system_utilization(base, level / 0.5)
                for kw in (
                    {"method": "reduced", "update": "jacobi"},
                    {"method": "exact", "update": "gauss_seidel"},
                ):
                    exact = analyze(system, config=AnalysisConfig(**kw))
                    fast = analyze(
                        system, config=AnalysisConfig(mode="verdict", **kw)
                    )
                    assert fast.schedulable == exact.schedulable, (seed, level, kw)


class TestStructuralProperties:
    """The two monotonicity facts the early exits are sound because of."""

    def test_wcrt_non_decreasing_along_chains(self):
        for system in _systems()[:60]:
            result = analyze(system, config=GS)
            for i, tr in enumerate(system.transactions):
                for j in range(1, len(tr.tasks)):
                    lo, hi = result.wcrt(i, j - 1), result.wcrt(i, j)
                    assert hi >= lo - 1e-9 or (
                        math.isinf(lo) and math.isinf(hi)
                    ), (i, j)

    def test_verdict_monotone_along_utilization_chain(self):
        for seed in range(15):
            base = random_system(
                RandomSystemSpec(
                    n_platforms=3,
                    n_transactions=4,
                    tasks_per_transaction=(2, 4),
                    utilization=0.3,
                ),
                seed=seed,
            )
            verdicts = [
                analyze(
                    scale_system_utilization(base, level / 0.3), config=GS
                ).schedulable
                for level in (0.3, 0.5, 0.7, 0.9, 1.1)
            ]
            # Once unschedulable, never schedulable again at higher levels.
            assert verdicts == sorted(verdicts, reverse=True), (seed, verdicts)


class TestPrefilters:
    def test_utilization_reject_matches_exact_verdict(self):
        base = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 3),
                utilization=0.5,
            ),
            seed=7,
        )
        overloaded = scale_system_utilization(base, 4.0)
        assert utilization_prefilter(overloaded) is not None
        before = fixed_point_stats()
        result = analyze(overloaded, config=GS_VERDICT)
        delta = fixed_point_stats().delta(before)
        assert result.prefilter == "utilization"
        assert not result.schedulable
        assert delta.prefilter_rejects == 1
        assert delta.solves == 0  # no fixed point was ever iterated
        assert not analyze(overloaded, config=GS).schedulable

    def test_bound_accept_matches_exact_verdict(self):
        # Single-task transactions: the capped-jitter round is exact, so
        # the sufficient filter classifies every schedulable system.
        system = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 1),
                utilization=0.3,
            ),
            seed=1,
        )
        before = fixed_point_stats()
        result = analyze(system, config=GS_VERDICT)
        delta = fixed_point_stats().delta(before)
        assert result.prefilter == "bound"
        assert result.schedulable
        assert delta.prefilter_accepts == 1
        assert analyze(system, config=GS).schedulable
        assert result.outer_iterations == 0

    def test_prefilters_off_still_correct(self):
        config = AnalysisConfig(
            method="reduced", update="gauss_seidel", mode="verdict",
            prefilters=False,
        )
        for system in _systems()[:40]:
            assert (
                analyze(system, config=config).schedulable
                == analyze(system, config=GS).schedulable
            )

    def test_independent_tasks_preset_is_the_prefilter_regime(self):
        """The ``independent_tasks_spec`` preset pin: with single-task
        transactions the sufficient pre-filter classifies every
        schedulable draw without the holistic loop.  (Inside a pruned
        *campaign* the bisection deliberately probes near-threshold
        levels, where the filter is inconclusive by design -- the
        filter's payoff is at the single-verdict API level.)"""
        from repro.gen import independent_tasks_spec

        before = fixed_point_stats()
        for seed in range(12):
            for u in (0.2, 0.3, 0.4):
                system = random_system(independent_tasks_spec(u), seed=seed)
                fast = analyze(system, config=GS_VERDICT)
                assert (
                    fast.schedulable
                    == analyze(system, config=GS).schedulable
                )
        delta = fixed_point_stats().delta(before)
        assert delta.prefilter_accepts >= 10

    def test_verdict_trace_rows_are_complete_and_renderable(self):
        """A mid-round abort must not leave holes in the trace rows:
        render_table3/text_report index every (i, j) of every row."""
        from repro.analysis.report import text_report
        from repro.paper import render_table3

        system = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(2, 3),
                utilization=0.9,
            ),
            seed=0,
        )
        result = analyze(system, config=GS_VERDICT, trace=True)
        assert not result.schedulable  # the abort path really engaged
        keys = set(result.tasks)
        for row in result.iterations:
            assert set(row.responses) == keys
        for i, tr in enumerate(system.transactions):
            if len(tr.tasks) > 1:
                render_table3(result, transaction=i)  # must not raise
        text_report(system, result, include_trace=True)

    def test_trace_request_bypasses_prefilters(self):
        """``--mode verdict --trace`` must yield an iteration table even
        for systems a pre-filter would classify."""
        base = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 3),
                utilization=0.5,
            ),
            seed=7,
        )
        overloaded = scale_system_utilization(base, 4.0)
        traced = analyze(overloaded, config=GS_VERDICT, trace=True)
        assert not traced.schedulable
        assert traced.prefilter is None
        assert traced.iterations  # the holistic loop ran and recorded rows
        easy = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(1, 1),
                utilization=0.3,
            ),
            seed=1,
        )
        traced = analyze(easy, config=GS_VERDICT, trace=True)
        assert traced.schedulable
        assert traced.prefilter is None
        assert traced.iterations

    def test_ceiling_exits_counted_separately_from_divergence(self):
        before = fixed_point_stats()
        for system in _systems():
            analyze(system, config=GS_VERDICT)
        delta = fixed_point_stats().delta(before)
        assert delta.ceiling_exits > 0


class TestBusyLengthCeiling:
    """ISSUE 5 satellite: the busy-period *length* loop aborts under a
    verdict ceiling too.

    Near-saturated levels used to pay the whole busy-length solve before
    the first completion iterate could imply a miss; the verdict path now
    solves completions incrementally as busy iterates widen the window,
    so the first-job miss aborts the scenario almost immediately.  A long
    busy period alone proves nothing (late interference can stretch it
    with every deadline met), which is why the abort still rides on
    completion iterates -- these pins check the counters, the soundness
    direction and the evaluation savings.
    """

    @staticmethod
    def _scenario(util: float):
        from repro.analysis._scenario import solve_scenario
        from repro.analysis.busy import AnalyzedTask

        analyzed = AnalyzedTask(
            txn=0, idx=0, period=10.0, deadline=10.0, phi=0.0, jitter=0.0,
            cost=1.0, blocking=0.0, delay=0.0, priority=1, platform=0,
        )
        step = 10.0 * util - 1.0  # own task contributes 0.1

        def interference(t: float) -> float:
            return step * math.ceil(max(t, 0.0) / 10.0)

        return solve_scenario, analyzed, interference

    def test_saturated_scenario_aborts_before_busy_converges(self):
        solve, analyzed, interference = self._scenario(util=1.005)
        before = fixed_point_stats()
        exact = solve(analyzed, 0.0, interference, bound=1e4)
        d_exact = fixed_point_stats().delta(before)
        assert exact.response == float("inf")
        assert d_exact.diverged == 1  # exact pays the walk to the bound
        assert exact.evaluations > 100

        before = fixed_point_stats()
        fast = solve(
            analyzed, 0.0, interference, bound=1e4, response_ceiling=10.0
        )
        delta = fixed_point_stats().delta(before)
        assert fast.response == float("inf")  # same verdict
        assert delta.ceiling_exits == 1
        assert delta.diverged == 0  # a ceiling exit is not a divergence
        # The counter pin: the whole scenario costs a handful of
        # evaluations instead of the 100+ busy-length walk above.
        assert fast.evaluations < 10

    def test_schedulable_scenario_identical_to_exact(self):
        solve, analyzed, interference = self._scenario(util=0.5)
        exact = solve(analyzed, 0.0, interference, bound=1e4)
        fast = solve(
            analyzed, 0.0, interference, bound=1e4, response_ceiling=10.0
        )
        assert exact.response <= 10.0
        # No abort fires, and the interleaved order solves the same jobs
        # through the same iterate sequences: outcome identical.
        assert fast == exact

    def test_interference_stretched_busy_period_keeps_parity(self):
        """The unsound shortcut this satellite must NOT take: a busy
        period stretched past the deadline horizon purely by *later*
        interference, while the single own job is long done.  The verdict
        path must still report the exact (schedulable) response."""
        from repro.analysis._scenario import solve_scenario
        from repro.analysis.busy import AnalyzedTask

        analyzed = AnalyzedTask(
            txn=0, idx=0, period=1000.0, deadline=100.0, phi=0.0,
            jitter=0.0, cost=1.0, blocking=0.0, delay=0.0, priority=1,
            platform=0,
        )

        def interference(t: float) -> float:
            # A burst at t=2 (after the own job completed at 1.0) chains
            # the busy period out to ~90: longer than deadline+response
            # yet perfectly schedulable.
            total = 0.0
            for arrival in (2.0, 30.0, 60.0):
                if t > arrival:
                    total += 29.0
            return total

        exact = solve_scenario(analyzed, 0.0, interference, bound=1e6)
        fast = solve_scenario(
            analyzed, 0.0, interference, bound=1e6, response_ceiling=100.0
        )
        assert exact.response == 1.0  # the own job finished long before
        assert fast == exact  # no false miss from the long busy period


class TestIterateCeiling:
    """The generalized ceiling of the shared fixed-point iterator."""

    def test_ceiling_aborts_before_bound(self):
        before = fixed_point_stats()
        with pytest.raises(FixedPointCeilingHit) as err:
            iterate_fixed_point(lambda x: x + 1.0, 0.0, bound=1e9, ceiling=10.0)
        delta = fixed_point_stats().delta(before)
        assert err.value.iterations < 15
        assert delta.ceiling_exits == 1
        assert delta.diverged == 0  # a ceiling exit is not a divergence

    def test_no_ceiling_reproduces_exact_fixed_point(self):
        res = iterate_fixed_point(lambda x: 0.5 * x + 1.0, 0.0)
        res2 = iterate_fixed_point(lambda x: 0.5 * x + 1.0, 0.0, ceiling=100.0)
        assert res.value == res2.value
        assert res.iterations == res2.iterations


CAMPAIGN_KW = dict(
    grid={"utilization": linspace_levels(0.3, 0.95, 14)},
    base={"n_platforms": 3, "n_transactions": 4,
          "tasks_per_transaction": (2, 4)},
    systems_per_cell=4,
    seed=3,
)


def _cell_key(cell):
    frozen = tuple(
        (k, tuple(v) if isinstance(v, list) else v)
        for k, v in sorted(cell.params.items())
    )
    return frozen, cell.seed


def _verdict_map(result):
    return {_cell_key(c): c.schedulable for c in result.cells}


class TestCampaignPruning:
    def test_verdict_method_is_registered_monotone(self):
        assert resolve_method("verdict").verdict_monotone
        assert not resolve_method("gauss_seidel").verdict_monotone

    def test_mixed_spec_verdict_equals_exact_per_cell(self):
        """One spec, both methods: the bisected verdict cells must agree
        with the fully-solved gauss_seidel cells on every (system, level)."""
        result = Campaign(
            CampaignSpec(methods=("gauss_seidel", "verdict"), **CAMPAIGN_KW)
        ).run(workers=1)
        exact = {
            _cell_key(c): c.schedulable
            for c in result.cells
            if c.method == "gauss_seidel"
        }
        fast = {
            _cell_key(c): c.schedulable
            for c in result.cells
            if c.method == "verdict"
        }
        assert exact == fast
        inferred = [
            c for c in result.cells
            if c.extras.get("verdict_inferred")
        ]
        assert inferred, "the pruning path never engaged"
        for c in inferred:
            assert c.method == "verdict"
            assert c.evaluations == 0
            assert c.extras["inference"] == "monotone_utilization"
            assert c.extras["from_level"] in CAMPAIGN_KW["grid"]["utilization"]

    def test_sharded_union_bit_identical(self):
        campaign = Campaign(
            CampaignSpec(methods=("verdict",), **CAMPAIGN_KW)
        )
        full = campaign.run(workers=1)
        for n in (2, 3):
            shards = [
                campaign.run(workers=1, shard=(k, n)) for k in range(n)
            ]
            merged = merge_campaign_results(shards)
            assert merged.metrics() == full.metrics()

    def test_truncate_resume_verdicts_identical(self):
        campaign = Campaign(
            CampaignSpec(methods=("verdict",), **CAMPAIGN_KW)
        )
        full = campaign.run(workers=1)
        n = len(full.cells)
        for cut in (3, n // 3, n // 2, n - 5):
            partial = campaign.run(workers=1, max_cells=cut)
            assert partial.truncated
            resumed = campaign.run(workers=1, resume_from=partial)
            assert _verdict_map(resumed) == _verdict_map(full), cut
            assert resumed.reused_cells == cut

    def test_resume_prefix_miss_infers_suffix(self):
        """A reused prefix that already contains a miss must let the chain
        skip every remaining probe (resume_unsched) -- and still agree."""
        campaign = Campaign(
            CampaignSpec(methods=("verdict",), systems_per_cell=2, **{
                k: v for k, v in CAMPAIGN_KW.items()
                if k != "systems_per_cell"
            })
        )
        full = campaign.run(workers=1)
        # Cut deep enough that some chain's completed prefix includes its
        # unschedulable threshold level.
        partial = campaign.run(workers=1, max_cells=len(full.cells) - 3)
        assert any(not c.schedulable for c in partial.cells)
        resumed = campaign.run(workers=1, resume_from=partial)
        assert _verdict_map(resumed) == _verdict_map(full)

    def test_pickle_and_shm_collection_agree_on_pruned_cells(self):
        campaign = Campaign(
            CampaignSpec(methods=("verdict",), **CAMPAIGN_KW)
        )
        pickle_run = campaign.run(workers=2, collect="pickle")
        shm_run = campaign.run(workers=2, collect="shm")
        assert shm_run.metrics() == pickle_run.metrics()
        assert [c.extras for c in shm_run.cells] == [
            c.extras for c in pickle_run.cells
        ]


class TestExactModeUnchanged:
    """PR 3 cost-model pins: verdict machinery invisible in exact mode."""

    #: Captured on the PR 3 tree (pre-verdict-pipeline) for this exact
    #: spec; exact mode must keep reproducing them byte for byte.
    PR3_PINS = {
        "evaluations_total": 2632,
        "outer_iterations_total": 95,
        "fp_solves": 1308,
        "fp_task_solves": 445,
        "fp_task_skips": 105,
        "schedulable": 26,
        "n": 40,
    }

    def test_exact_mode_counters_pinned(self):
        spec = CampaignSpec(
            grid={"utilization": linspace_levels(0.3, 0.9, 5)},
            base={"n_platforms": 2, "n_transactions": 3,
                  "tasks_per_transaction": (1, 3)},
            methods=("gauss_seidel", "reduced"),
            systems_per_cell=4,
            seed=11,
        )
        result = Campaign(spec).run(workers=1)
        acc = result.accounting()
        measured = {
            "evaluations_total": acc["evaluations_total"],
            "outer_iterations_total": acc["outer_iterations_total"],
            "fp_solves": sum(c.extras["fp_solves"] for c in result.cells),
            "fp_task_solves": sum(
                c.extras["fp_task_solves"] for c in result.cells
            ),
            "fp_task_skips": sum(
                c.extras["fp_task_skips"] for c in result.cells
            ),
            "schedulable": sum(c.schedulable for c in result.cells),
            "n": len(result.cells),
        }
        assert measured == self.PR3_PINS

    def test_exact_mode_extras_carry_no_verdict_keys(self):
        system = _systems()[0]
        from repro.batch.methods import resolve_method as rm

        outcome = rm("gauss_seidel").fn(system, None)
        assert "fp_ceiling_exits" not in outcome.extras
        assert "fp_prefilter" not in outcome.extras
        verdict_outcome = rm("verdict").fn(system, None)
        assert "fp_ceiling_exits" in verdict_outcome.extras

    def test_exact_mode_never_touches_verdict_counters(self):
        before = fixed_point_stats()
        for system in _systems()[:30]:
            analyze(system, config=GS)
        delta = fixed_point_stats().delta(before)
        assert delta.ceiling_exits == 0
        assert delta.prefilter_accepts == 0
        assert delta.prefilter_rejects == 0
