"""Edge cases of the holistic outer iteration and its configuration."""

import math

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.analysis.interfaces import UNSCHEDULABLE
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform


def chain_system(*, deadline=50.0, wcets=(6.0, 6.0)):
    tr1 = Transaction(
        period=10.0, deadline=deadline, name="heavy",
        tasks=[Task(wcet=wcets[0], platform=0, priority=2)],
    )
    tr2 = Transaction(
        period=10.0, deadline=deadline, name="victim",
        tasks=[Task(wcet=wcets[1], platform=0, priority=1)],
    )
    return TransactionSystem(
        transactions=[tr1, tr2], platforms=[DedicatedPlatform()]
    )


class TestConfigValidation:
    def test_bad_method(self):
        with pytest.raises(ValueError):
            AnalysisConfig(method="psychic")

    def test_bad_best_case(self):
        with pytest.raises(ValueError):
            AnalysisConfig(best_case="wish")

    def test_bad_iteration_cap(self):
        with pytest.raises(ValueError):
            AnalysisConfig(max_outer_iterations=0)

    def test_bad_busy_bound(self):
        with pytest.raises(ValueError):
            AnalysisConfig(busy_bound_factor=0.0)


class TestStopOnMiss:
    def test_stops_early_without_changing_verdict(self):
        # A multi-task chain that misses: the full iteration and the early
        # stop agree on the verdict.
        tr = Transaction(
            period=30.0, deadline=8.0, name="tight",
            tasks=[
                Task(wcet=3.0, platform=0, priority=1),
                Task(wcet=3.0, platform=1, priority=1),
            ],
        )
        noise = Transaction(
            period=10.0, name="noise",
            tasks=[Task(wcet=4.0, platform=0, priority=2)],
        )
        system = TransactionSystem(
            transactions=[tr, noise],
            platforms=[DedicatedPlatform(), LinearSupplyPlatform(0.5, 1.0)],
        )
        full = analyze(system)
        fast = analyze(system, config=AnalysisConfig(stop_on_miss=True))
        assert not full.schedulable
        assert not fast.schedulable
        assert fast.outer_iterations <= full.outer_iterations


class TestIterationCap:
    def test_cap_reported_as_not_converged(self):
        # A converging system with an absurdly small cap.
        result = analyze(
            sensor_fusion_system(),
            config=AnalysisConfig(max_outer_iterations=1),
        )
        assert not result.converged
        assert result.outer_iterations == 1
        # The returned responses are a valid (optimistic) first iterate,
        # not the fixed point: Gamma_1's final value is larger.
        full = analyze(sensor_fusion_system())
        assert result.wcrt(0, 3) <= full.wcrt(0, 3)


class TestDivergenceShapes:
    def test_overload_reports_inf_and_verdict(self):
        result = analyze(
            chain_system(), config=AnalysisConfig(busy_bound_factor=30)
        )
        assert not result.schedulable
        assert math.isinf(result.transaction_wcrt[1])
        assert result.transaction_wcrt[0] < UNSCHEDULABLE

    def test_trace_contains_inf_row(self):
        result = analyze(
            chain_system(),
            config=AnalysisConfig(busy_bound_factor=30),
            trace=True,
        )
        last = result.iterations[-1]
        assert any(math.isinf(v) for v in last.responses.values())

    def test_misses_listed(self):
        result = analyze(
            chain_system(), config=AnalysisConfig(busy_bound_factor=30)
        )
        assert result.misses() == [1]


class TestInputPreservation:
    def test_input_system_not_mutated(self):
        system = sensor_fusion_system()
        before = [
            (t.offset, t.jitter)
            for tr in system.transactions
            for t in tr.tasks
        ]
        analyze(system)
        after = [
            (t.offset, t.jitter)
            for tr in system.transactions
            for t in tr.tasks
        ]
        assert before == after

    def test_first_task_offset_respected(self):
        # A designer-specified release offset on the first task survives.
        tr = Transaction(
            period=20.0,
            tasks=[
                Task(wcet=1.0, platform=0, priority=1, offset=5.0),
            ],
        )
        system = TransactionSystem(transactions=[tr], platforms=[DedicatedPlatform()])
        result = analyze(system)
        assert result.tasks[(0, 0)].offset == 5.0
        # Response measured from the transaction activation includes it.
        assert result.wcrt(0, 0) == pytest.approx(6.0)
