"""Exactness checks: analytic bounds attained by the critical-instant run.

For independent tasks under fixed priorities on a *dedicated* processor,
the synchronous release is the critical instant (Liu & Layland), so a
synchronous simulation must *attain* the analytic worst case exactly --
not just stay below it.  This pins down any hidden pessimism in the
transaction machinery for the classical special case.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import RandomSystemSpec, random_system
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform
from repro.sim import ReleasePolicy, SimulationConfig, simulate


def independent_system(specs):
    txns = [
        Transaction(
            period=p, deadline=d, name=f"G{k}",
            tasks=[Task(wcet=c, platform=0, priority=prio)],
        )
        for k, (c, p, d, prio) in enumerate(specs)
    ]
    return TransactionSystem(transactions=txns, platforms=[DedicatedPlatform()])


class TestCriticalInstantAttainsBound:
    @pytest.mark.parametrize("specs", [
        [(1.0, 4.0, 4.0, 3), (2.0, 6.0, 6.0, 2), (3.0, 12.0, 12.0, 1)],
        [(1.0, 5.0, 5.0, 2), (2.5, 9.0, 9.0, 1)],
        [(0.5, 3.0, 3.0, 4), (1.0, 7.0, 7.0, 3), (1.5, 11.0, 11.0, 2),
         (2.0, 33.0, 33.0, 1)],
    ])
    def test_synchronous_sim_attains_analysis(self, specs):
        system = independent_system(specs)
        result = analyze(system)
        assert result.schedulable
        horizon = 4.0 * max(p for _, p, _, _ in specs) * len(specs)
        trace = simulate(
            system,
            config=SimulationConfig(
                horizon=horizon,
                release=ReleasePolicy(mode="synchronous"),
            ),
        )
        for i in range(len(specs)):
            observed = trace.tasks[(i, 0)].max_response
            bound = result.wcrt(i, 0)
            assert observed == pytest.approx(bound, abs=1e-9), (
                f"task {i}: observed {observed} vs bound {bound}"
            )

    def test_exact_method_also_attained(self):
        specs = [(1.0, 4.0, 4.0, 3), (2.0, 6.0, 6.0, 2), (3.0, 12.0, 12.0, 1)]
        system = independent_system(specs)
        result = analyze(system, config=AnalysisConfig(method="exact"))
        trace = simulate(system, config=SimulationConfig(horizon=120.0))
        for i in range(len(specs)):
            assert trace.tasks[(i, 0)].max_response == pytest.approx(
                result.wcrt(i, 0)
            )


class TestRandomIndependentDedicated:
    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_bound_attained_on_random_singleton_systems(self, seed):
        spec = RandomSystemSpec(
            n_platforms=1,
            n_transactions=4,
            tasks_per_transaction=(1, 1),
            utilization=0.7,
            rate_range=(1.0, 1.0),
            delay_range=(0.0, 0.0),
            burst_range=(0.0, 0.0),
        )
        system = random_system(spec, seed=seed)
        result = analyze(system)
        if not result.schedulable:
            pytest.skip("draw not schedulable; exactness claim needs D<=T met")
        horizon = 30.0 * max(tr.period for tr in system.transactions)
        trace = simulate(system, config=SimulationConfig(horizon=horizon))
        for i in range(len(system.transactions)):
            observed = trace.tasks[(i, 0)].max_response
            bound = result.wcrt(i, 0)
            # Attainment up to hyperperiod truncation: the synchronous
            # pattern repeats, so the first busy period already shows it.
            assert observed == pytest.approx(bound, rel=1e-9)
