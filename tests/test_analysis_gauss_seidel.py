"""Tests for the Gauss-Seidel outer-iteration variant."""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import RandomSystemSpec, random_system
from repro.paper import sensor_fusion_system


class TestGaussSeidel:
    def test_same_fixed_point_on_example(self):
        system = sensor_fusion_system()
        jac = analyze(system, config=AnalysisConfig(update="jacobi"))
        gs = analyze(system, config=AnalysisConfig(update="gauss_seidel"))
        for key in jac.tasks:
            assert gs.tasks[key].wcrt == pytest.approx(jac.tasks[key].wcrt)
            assert gs.tasks[key].jitter == pytest.approx(jac.tasks[key].jitter)
        assert gs.schedulable == jac.schedulable

    def test_fewer_or_equal_iterations(self):
        system = sensor_fusion_system()
        jac = analyze(system, config=AnalysisConfig(update="jacobi"))
        gs = analyze(system, config=AnalysisConfig(update="gauss_seidel"))
        assert gs.outer_iterations <= jac.outer_iterations

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_same_fixed_point_on_random_systems(self, seed):
        spec = RandomSystemSpec(
            n_platforms=2,
            n_transactions=3,
            tasks_per_transaction=(2, 4),
            utilization=0.45,
        )
        system = random_system(spec, seed=seed)
        jac = analyze(system, config=AnalysisConfig(update="jacobi"))
        gs = analyze(system, config=AnalysisConfig(update="gauss_seidel"))
        for key in jac.tasks:
            assert gs.tasks[key].wcrt == pytest.approx(jac.tasks[key].wcrt)

    def test_paper_trace_requires_jacobi(self):
        """Table 3 is a Jacobi trace; the default config reproduces it."""
        assert AnalysisConfig().update == "jacobi"

    def test_bad_update_rejected(self):
        with pytest.raises(ValueError, match="update"):
            AnalysisConfig(update="chaotic")
