"""Simulation-vs-analysis soundness: the reproduction's core invariant."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gen import RandomSystemSpec, random_system
from repro.paper import sensor_fusion_system
from repro.sim import validate_against_analysis


class TestPaperExample:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_against_analysis(
            sensor_fusion_system(),
            horizon=3000.0,
            seeds=(0, 1),
            placements=("early", "late", "random"),
        )

    def test_sound(self, report):
        assert report.sound, (
            f"violations: {report.violations}, best: {report.best_violations}"
        )

    def test_every_task_observed(self, report):
        assert set(report.observed) == set(report.bound)

    def test_bounds_not_absurdly_loose(self, report):
        # The analysis should be within ~3x of the observed worst case on
        # this small example (it is ~1.1-2x in practice).
        for key, obs in report.observed.items():
            assert obs >= report.bound[key] / 4.0

    def test_runs_counted(self, report):
        assert report.runs == 2 * 3 * 2


class TestRandomSystems:
    @given(st.integers(min_value=0, max_value=12))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_soundness_on_random_systems(self, seed):
        spec = RandomSystemSpec(
            n_platforms=2,
            n_transactions=3,
            tasks_per_transaction=(1, 3),
            utilization=0.4,
            delay_range=(0.0, 2.0),
        )
        system = random_system(spec, seed=seed)
        report = validate_against_analysis(
            system,
            seeds=(seed,),
            placements=("late", "random"),
            release_modes=("synchronous",),
            horizon=40.0 * max(tr.period for tr in system.transactions),
        )
        assert report.sound, (
            f"seed {seed}: violations {report.violations} "
            f"best {report.best_violations}"
        )

    def test_tightness_helper(self):
        report = validate_against_analysis(
            sensor_fusion_system(), horizon=1000.0, seeds=(0,),
            placements=("late",), release_modes=("synchronous",),
        )
        for key in report.bound:
            ratio = report.tightness(*key)
            assert 0.0 <= ratio <= 1.0 + 1e-9
