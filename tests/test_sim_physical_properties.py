"""Property tests for the global scheduler (random server sets)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.platforms.periodic_server import PeriodicServer
from repro.sim import schedule_servers


def random_server_set(seed: int, total_util: float, n: int):
    rng = np.random.default_rng(seed)
    from repro.gen import uunifast

    utils = uunifast(n, total_util, rng)
    servers = []
    for u in utils:
        period = float(rng.uniform(2.0, 20.0))
        budget = max(1e-3, float(u) * period)
        servers.append(PeriodicServer(min(budget, period), period))
    return servers


SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGlobalEdfProperties:
    @given(
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.2, max_value=1.0),
        st.integers(min_value=1, max_value=4),
    )
    @SETTINGS
    def test_edf_delivers_every_budget(self, seed, total_util, n):
        servers = random_server_set(seed, total_util, n)
        horizon = 8.0 * max(s.period for s in servers)
        res = schedule_servers(servers, horizon=horizon, policy="edf")
        assert res.feasible
        for srv, sup in zip(servers, res.supplies):
            k = 0
            while (k + 1) * srv.period <= horizon:
                got = sup.delivered(k * srv.period, (k + 1) * srv.period)
                assert got == pytest.approx(srv.budget, abs=1e-6)
                k += 1

    @given(
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.2, max_value=0.95),
        st.integers(min_value=2, max_value=4),
    )
    @SETTINGS
    def test_no_two_servers_run_simultaneously(self, seed, total_util, n):
        servers = random_server_set(seed, total_util, n)
        horizon = 5.0 * max(s.period for s in servers)
        res = schedule_servers(servers, horizon=horizon, policy="edf")
        events = sorted(w for sup in res.supplies for w in sup.windows)
        for (s0, e0), (s1, _) in zip(events, events[1:]):
            assert e0 <= s1 + 1e-9

    @given(
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.2, max_value=0.9),
    )
    @SETTINGS
    def test_idle_fraction_complements_utilization(self, seed, total_util):
        servers = random_server_set(seed, total_util, 3)
        # Use a horizon that is a common multiple-ish window: idle fraction
        # approaches 1 - total utilization for long horizons.
        horizon = 60.0 * max(s.period for s in servers)
        res = schedule_servers(servers, horizon=horizon, policy="edf")
        expected = 1.0 - sum(s.rate for s in servers)
        assert res.idle_fraction == pytest.approx(expected, abs=0.05)

    @given(st.integers(min_value=0, max_value=50))
    @SETTINGS
    def test_supply_within_server_envelope(self, seed):
        """Each derived supply respects the advertised supply bounds."""
        servers = random_server_set(seed, 0.7, 2)
        horizon = 10.0 * max(s.period for s in servers)
        res = schedule_servers(servers, horizon=horizon, policy="edf")
        rng = np.random.default_rng(seed + 1)
        for srv, sup in zip(servers, res.supplies):
            for _ in range(4):
                t0 = float(rng.uniform(0.0, horizon / 2))
                t = float(rng.uniform(0.1, horizon / 2 - 1e-9))
                got = sup.delivered(t0, t0 + t)
                assert got >= srv.zmin(t) - 1e-6
                assert got <= srv.zmax(t) + 1e-6
