"""Tests for the classical baselines (dedicated special case, independent RTA)."""

import math

import pytest

from repro.analysis import analyze, analyze_dedicated, rta_independent
from repro.analysis.classic import IndependentTask
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform


class TestRtaIndependent:
    def test_textbook_set(self):
        tasks = [
            IndependentTask(wcet=1.0, period=4.0, deadline=4.0, priority=3),
            IndependentTask(wcet=2.0, period=6.0, deadline=6.0, priority=2),
            IndependentTask(wcet=3.0, period=12.0, deadline=12.0, priority=1),
        ]
        r = rta_independent(tasks)
        assert r == pytest.approx([1.0, 3.0, 10.0])

    def test_jitter_increases_response(self):
        base = [
            IndependentTask(wcet=1.0, period=4.0, deadline=4.0, priority=2),
            IndependentTask(wcet=2.0, period=10.0, deadline=10.0, priority=1),
        ]
        jittered = [
            IndependentTask(wcet=1.0, period=4.0, deadline=4.0, priority=2, jitter=3.0),
            IndependentTask(wcet=2.0, period=10.0, deadline=10.0, priority=1),
        ]
        assert rta_independent(jittered)[1] >= rta_independent(base)[1]

    def test_blocking_term(self):
        tasks = [IndependentTask(wcet=1.0, period=10.0, deadline=10.0,
                                 priority=1, blocking=2.5)]
        assert rta_independent(tasks)[0] == pytest.approx(3.5)

    def test_overload_reports_inf(self):
        tasks = [
            IndependentTask(wcet=5.0, period=8.0, deadline=8.0, priority=2),
            IndependentTask(wcet=5.0, period=8.0, deadline=8.0, priority=1),
        ]
        r = rta_independent(tasks, max_busy=1e4)
        assert math.isinf(r[1])

    def test_agrees_with_transaction_analysis_on_dedicated_platform(self):
        """Singleton transactions on one dedicated CPU == classical RTA."""
        specs = [(1.0, 5.0, 3), (1.5, 8.0, 2), (2.5, 20.0, 1)]
        txns = [
            Transaction(period=p, tasks=[Task(wcet=c, platform=0, priority=prio)])
            for c, p, prio in specs
        ]
        system = TransactionSystem(transactions=txns, platforms=[DedicatedPlatform()])
        ours = analyze(system).transaction_wcrt
        classical = rta_independent([
            IndependentTask(wcet=c, period=p, deadline=p, priority=prio)
            for c, p, prio in specs
        ])
        assert ours == pytest.approx(classical)


class TestAnalyzeDedicated:
    def test_dedicated_never_slower(self):
        """Full-speed dedicated platforms dominate the shared platforms."""
        system = sensor_fusion_system()
        shared = analyze(system)
        dedicated = analyze_dedicated(system)
        for key in shared.tasks:
            assert dedicated.tasks[key].wcrt <= shared.tasks[key].wcrt + 1e-9

    def test_dedicated_verdict(self):
        assert analyze_dedicated(sensor_fusion_system()).schedulable

    def test_dedicated_gamma1_value(self):
        # On (1,0,0) platforms Gamma_1 is a 4-task chain with no competing
        # higher-priority work except its own compute/init relationship.
        ded = analyze_dedicated(sensor_fusion_system())
        # Chain of four unit tasks, some interference from the pollers.
        assert 4.0 <= ded.wcrt(0, 3) <= 10.0
