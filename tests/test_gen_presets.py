"""Tests for the canonical workload presets."""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import automotive_cluster, avionics_partitions
from repro.io import assembly_from_dict, assembly_to_dict
from repro.sim import validate_against_analysis


class TestAutomotiveCluster:
    @pytest.fixture(scope="class")
    def system(self):
        return automotive_cluster().derive_transactions()

    def test_validates(self):
        asm = automotive_cluster()
        assert not [p for p in asm.validate() if p.fatal]

    def test_structure(self, system):
        names = [tr.name for tr in system]
        assert "Dash.refresh" in names
        assert "Diag.obd" in names
        dash = next(tr for tr in system if tr.name == "Dash.refresh")
        kinds = [t.meta.get("kind") for t in dash.tasks]
        # req msg, engine snapshot, rep msg, render
        assert kinds == ["message", "code", "message", "code"]

    def test_schedulable(self, system):
        result = analyze(system)
        assert result.schedulable

    def test_bus_utilization_reasonable(self, system):
        bus = 3  # platform registration order
        assert 0.0 < system.utilization(bus) < 0.5

    def test_sim_sound(self, system):
        report = validate_against_analysis(
            system, seeds=(0,), placements=("late",),
            release_modes=("synchronous",), horizon=2000.0,
        )
        assert report.sound

    def test_round_trips_through_json(self):
        asm = automotive_cluster()
        back = assembly_from_dict(assembly_to_dict(asm))
        ra = analyze(asm.derive_transactions())
        rb = analyze(back.derive_transactions())
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)


class TestAvionicsPartitions:
    @pytest.fixture(scope="class")
    def system(self):
        return avionics_partitions().derive_transactions()

    def test_validates(self):
        asm = avionics_partitions()
        assert not [p for p in asm.validate() if p.fatal]

    def test_server_platforms(self, system):
        from repro.platforms import PeriodicServer

        assert all(isinstance(p, PeriodicServer) for p in system.platforms)
        assert sum(p.rate for p in system.platforms) <= 1.0

    def test_schedulable(self, system):
        assert analyze(system).schedulable

    def test_cross_partition_chain(self, system):
        nav = next(tr for tr in system if tr.name == "NAV.fusion")
        platforms = [t.platform for t in nav.tasks]
        # predict on p.nav, attitude served on p.fc, correct on p.nav.
        assert platforms == [1, 0, 1]

    def test_sim_sound(self, system):
        report = validate_against_analysis(
            system, seeds=(1,), placements=("late", "random"),
            release_modes=("synchronous",), horizon=4000.0,
        )
        assert report.sound

    def test_exact_analysis_feasible_size(self, system):
        result = analyze(system, config=AnalysisConfig(method="exact"))
        assert result.schedulable
