"""Tests for the canonical workload presets."""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import (
    RandomSystemSpec,
    automotive_cluster,
    avionics_partitions,
    campaign_base,
    deep_chain_spec,
    random_system,
    wide_view_spec,
)
from repro.io import assembly_from_dict, assembly_to_dict
from repro.sim import validate_against_analysis


class TestAutomotiveCluster:
    @pytest.fixture(scope="class")
    def system(self):
        return automotive_cluster().derive_transactions()

    def test_validates(self):
        asm = automotive_cluster()
        assert not [p for p in asm.validate() if p.fatal]

    def test_structure(self, system):
        names = [tr.name for tr in system]
        assert "Dash.refresh" in names
        assert "Diag.obd" in names
        dash = next(tr for tr in system if tr.name == "Dash.refresh")
        kinds = [t.meta.get("kind") for t in dash.tasks]
        # req msg, engine snapshot, rep msg, render
        assert kinds == ["message", "code", "message", "code"]

    def test_schedulable(self, system):
        result = analyze(system)
        assert result.schedulable

    def test_bus_utilization_reasonable(self, system):
        bus = 3  # platform registration order
        assert 0.0 < system.utilization(bus) < 0.5

    def test_sim_sound(self, system):
        report = validate_against_analysis(
            system, seeds=(0,), placements=("late",),
            release_modes=("synchronous",), horizon=2000.0,
        )
        assert report.sound

    def test_round_trips_through_json(self):
        asm = automotive_cluster()
        back = assembly_from_dict(assembly_to_dict(asm))
        ra = analyze(asm.derive_transactions())
        rb = analyze(back.derive_transactions())
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)


class TestAvionicsPartitions:
    @pytest.fixture(scope="class")
    def system(self):
        return avionics_partitions().derive_transactions()

    def test_validates(self):
        asm = avionics_partitions()
        assert not [p for p in asm.validate() if p.fatal]

    def test_server_platforms(self, system):
        from repro.platforms import PeriodicServer

        assert all(isinstance(p, PeriodicServer) for p in system.platforms)
        assert sum(p.rate for p in system.platforms) <= 1.0

    def test_schedulable(self, system):
        assert analyze(system).schedulable

    def test_cross_partition_chain(self, system):
        nav = next(tr for tr in system if tr.name == "NAV.fusion")
        platforms = [t.platform for t in nav.tasks]
        # predict on p.nav, attitude served on p.fc, correct on p.nav.
        assert platforms == [1, 0, 1]

    def test_sim_sound(self, system):
        report = validate_against_analysis(
            system, seeds=(1,), placements=("late", "random"),
            release_modes=("synchronous",), horizon=4000.0,
        )
        assert report.sound

    def test_exact_analysis_feasible_size(self, system):
        result = analyze(system, config=AnalysisConfig(method="exact"))
        assert result.schedulable


def _incremental_config() -> AnalysisConfig:
    return AnalysisConfig(
        method="reduced", update="gauss_seidel", incremental=True
    )


def _skip_fraction(spec: RandomSystemSpec, seeds=range(10)) -> float:
    """Aggregate dirty-set skip fraction over a deterministic seed set."""
    solves = skips = 0
    for seed in seeds:
        result = analyze(
            random_system(spec, seed=seed), config=_incremental_config()
        )
        solves += result.task_solves
        skips += result.task_skips
    return skips / (solves + skips)


class TestDeepChainPreset:
    """ROADMAP item: deep chains showcase + pin the dirty-set asymptotics."""

    def test_shape(self):
        spec = deep_chain_spec()
        assert spec.tasks_per_transaction == (8, 16)
        system = random_system(spec, seed=0)
        assert max(len(tr.tasks) for tr in system.transactions) >= 8

    def test_skip_fraction_grows_with_chain_depth(self):
        """The deeper the chains, the larger the fraction of per-task
        solves the chain-aware dirty set proves redundant."""
        def at_depth(tpt):
            return _skip_fraction(
                RandomSystemSpec(
                    n_platforms=2,
                    n_transactions=2,
                    tasks_per_transaction=tpt,
                    utilization=0.4,
                )
            )

        ladder = [at_depth(t) for t in [(1, 2), (2, 4), (8, 16)]]
        assert ladder[0] < ladder[1] < ladder[2], ladder
        # The deepest rung is the preset itself.
        assert ladder[2] == pytest.approx(
            _skip_fraction(deep_chain_spec(0.4))
        )

    def test_preset_beats_shallow_baseline(self):
        shallow = RandomSystemSpec(
            n_platforms=2,
            n_transactions=2,
            tasks_per_transaction=(1, 3),
            utilization=0.4,
        )
        assert _skip_fraction(deep_chain_spec(0.4)) > _skip_fraction(shallow)


class TestWideViewPreset:
    """ROADMAP item: wide views make ``kernel="auto"`` pick vector."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_auto_kernel_picks_vector(self, seed):
        from repro.analysis.busy import (
            VECTOR_MIN_JOBS,
            build_views,
            resolve_kernel,
        )

        system = random_system(wide_view_spec(), seed=seed)
        # The numerically lowest priority task observes every other task on
        # the (single) platform: its foreign views are the widest.
        i, j = min(
            (
                (i, j)
                for i, tr in enumerate(system.transactions)
                for j in range(len(tr.tasks))
            ),
            key=lambda key: system.transactions[key[0]].tasks[key[1]].priority,
        )
        _analyzed, _own, others = build_views(system, i, j)
        assert others, "wide-view preset must produce foreign views"
        for view in others:
            batch = len(view.tasks) ** 2  # Eq. 15 batched over starters
            assert batch >= VECTOR_MIN_JOBS
            assert resolve_kernel("auto", batch) == "vector"

    def test_single_platform_colocation(self):
        spec = wide_view_spec()
        assert spec.n_platforms == 1
        system = random_system(spec, seed=0)
        assert {t.platform for tr in system.transactions for t in tr.tasks} \
            == {0}


class TestCampaignBase:
    def test_base_drives_a_campaign(self):
        from repro.batch import Campaign, CampaignSpec

        spec = CampaignSpec(
            grid={"utilization": (0.35,)},
            base=campaign_base(deep_chain_spec()),
            methods=("gauss_seidel",),
            systems_per_cell=1,
            seed=4,
        )
        result = Campaign(spec).run(workers=1)
        assert len(result.cells) == 1
        # The dirty set engages on the deep chains.
        assert result.cells[0].extras["fp_task_skips"] > 0

    def test_base_excludes_sweep_axis(self):
        base = campaign_base(wide_view_spec())
        assert "utilization" not in base
        assert base["n_platforms"] == 1
