"""Unit tests for the exact/reduced analyses, best case and scenario counts."""

import math

import pytest

from repro.analysis import (
    AnalysisConfig,
    analyze,
    count_scenarios_exact,
    count_scenarios_reduced,
    response_time_exact,
    response_time_reduced,
)
from repro.analysis.bestcase import (
    best_case_response_times,
    iterative_best_case,
    simple_best_case,
    sound_best_case,
)
from repro.analysis.scenarios import count_scenarios_system
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform


def single_platform_system(specs, platform=None):
    """specs: list of (wcet, period, priority) single-task transactions."""
    txns = [
        Transaction(
            period=p, tasks=[Task(wcet=c, platform=0, priority=prio)],
            name=f"G{k}",
        )
        for k, (c, p, prio) in enumerate(specs)
    ]
    return TransactionSystem(
        transactions=txns,
        platforms=[platform or DedicatedPlatform()],
    )


class TestClassicalSpecialCase:
    """On (1, 0, 0) platforms the machinery must reproduce textbook RTA."""

    def test_two_task_example(self):
        # hp: C=1, T=4; analyzed: C=2, T=10 -> R = 2 + 2*1 = 4? Textbook:
        # w = 2 + ceil(w/4)*1: w=3 -> ceil(3/4)=1 -> 3. R = 3.
        s = single_platform_system([(1.0, 4.0, 2), (2.0, 10.0, 1)])
        r = response_time_reduced(s, 1, 0)
        assert r.wcrt == pytest.approx(3.0)

    def test_three_task_liu_layland(self):
        s = single_platform_system([
            (1.0, 4.0, 3), (2.0, 6.0, 2), (3.0, 12.0, 1),
        ])
        # w3 = 3 + ceil(w/4)*1 + ceil(w/6)*2; w=3: 3+1+2*... step through:
        # 0->3+1+2=6; 6->3+2+2=7; 7->3+2+4=9; 9->3+3+4=10; 10->3+3+4=10.
        r = response_time_reduced(s, 2, 0)
        assert r.wcrt == pytest.approx(10.0)

    def test_exact_equals_reduced_for_singleton_transactions(self):
        s = single_platform_system([
            (1.0, 5.0, 3), (1.5, 7.0, 2), (2.0, 16.0, 1),
        ])
        for i in range(3):
            e = response_time_exact(s, i, 0).wcrt
            r = response_time_reduced(s, i, 0).wcrt
            assert e == pytest.approx(r)


class TestPlatformEffects:
    def test_rate_scaling(self):
        slow = single_platform_system(
            [(1.0, 10.0, 1)], platform=LinearSupplyPlatform(0.5)
        )
        r = response_time_reduced(slow, 0, 0)
        assert r.wcrt == pytest.approx(2.0)

    def test_delay_added_once(self):
        s = single_platform_system(
            [(1.0, 10.0, 1)], platform=LinearSupplyPlatform(0.5, delay=3.0)
        )
        assert response_time_reduced(s, 0, 0).wcrt == pytest.approx(5.0)

    def test_dedicated_identity(self):
        s = single_platform_system([(2.5, 10.0, 1)])
        assert response_time_reduced(s, 0, 0).wcrt == pytest.approx(2.5)

    def test_other_platform_does_not_interfere(self):
        t1 = Transaction(period=10.0, tasks=[Task(wcet=5.0, platform=0, priority=9)])
        t2 = Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=1, priority=1)])
        s = TransactionSystem(
            transactions=[t1, t2],
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        assert response_time_reduced(s, 1, 0).wcrt == pytest.approx(1.0)


class TestDivergence:
    def test_overutilized_platform_reports_inf(self):
        s = single_platform_system([(6.0, 10.0, 2), (6.0, 10.0, 1)])
        r = response_time_reduced(s, 1, 0, config=AnalysisConfig(busy_bound_factor=50))
        assert math.isinf(r.wcrt)

    def test_holistic_marks_unschedulable(self):
        s = single_platform_system([(6.0, 10.0, 2), (6.0, 10.0, 1)])
        result = analyze(s, config=AnalysisConfig(busy_bound_factor=50))
        assert not result.schedulable
        assert math.isinf(result.transaction_wcrt[1])

    def test_divergence_propagates_down_chain(self):
        t1 = Transaction(
            period=10.0,
            tasks=[
                Task(wcet=6.0, platform=0, priority=1),
                Task(wcet=1.0, platform=1, priority=1),
            ],
        )
        t2 = Transaction(period=10.0, tasks=[Task(wcet=6.0, platform=0, priority=2)])
        s = TransactionSystem(
            transactions=[t1, t2],
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        result = analyze(s, config=AnalysisConfig(busy_bound_factor=50))
        assert math.isinf(result.wcrt(0, 0))
        assert math.isinf(result.wcrt(0, 1))  # successor poisoned too


class TestScenarioCounts:
    def test_eq12_on_paper_example(self):
        s = sensor_fusion_system()
        # tau_4_1: own transaction singleton (N_a = 0 -> factor 1), Gamma_1
        # contributes 2 interferers on Pi3 -> N = 1 * 2 = 2.
        assert count_scenarios_exact(s, 3, 0) == 2
        assert count_scenarios_reduced(s, 3, 0) == 1

    def test_counts_match_evaluated_scenarios(self):
        s = sensor_fusion_system()
        for i, tr in enumerate(s.transactions):
            for j in range(len(tr.tasks)):
                ex = response_time_exact(s, i, j)
                assert ex.scenarios_evaluated == count_scenarios_exact(s, i, j)

    def test_exact_guard_raises(self):
        s = sensor_fusion_system()
        cfg = AnalysisConfig(max_exact_scenarios=1)
        with pytest.raises(ValueError, match="exceeding max_exact_scenarios"):
            response_time_exact(s, 3, 0, config=cfg)

    def test_system_wide_counter(self):
        s = sensor_fusion_system()
        counts = count_scenarios_system(s, exact=True)
        assert counts[(3, 0)] == 2
        assert all(v >= 1 for v in counts.values())


class TestBestCase:
    def test_simple_matches_paper_offsets(self):
        s = sensor_fusion_system()
        assert simple_best_case(s, 0, 0) == pytest.approx(3.0)
        assert simple_best_case(s, 0, 1) == pytest.approx(4.0)
        assert simple_best_case(s, 0, 2) == pytest.approx(5.0)
        assert simple_best_case(s, 0, 3) == pytest.approx(8.0)

    def test_burstiness_clamps_at_zero(self):
        s = sensor_fusion_system()
        # tau_2_1: 0.25/0.4 - 1 < 0 -> 0.
        assert simple_best_case(s, 1, 0) == 0.0

    def test_sound_never_exceeds_paper_formula(self):
        """(C-beta)/alpha <= C/alpha - beta for alpha <= 1: the published
        bound is the optimistic... pessimistic one -- it is LARGER, hence
        unsound as a lower bound (see EXPERIMENTS.md)."""
        s = sensor_fusion_system()
        for i, tr in enumerate(s.transactions):
            for j in range(len(tr.tasks)):
                assert sound_best_case(s, i, j) <= simple_best_case(s, i, j) + 1e-12

    def test_sound_values_on_example(self):
        s = sensor_fusion_system()
        # tau_1_1 on Pi3: (0.8 - 1)/0.2 < 0 -> 0 (vs the paper's 3).
        assert sound_best_case(s, 0, 0) == 0.0
        # tau_4_1 on Pi3: (5 - 1)/0.2 = 20.
        assert sound_best_case(s, 3, 0) == pytest.approx(20.0)

    def test_iterative_at_least_sound(self):
        s = sensor_fusion_system()
        for i, tr in enumerate(s.transactions):
            for j in range(len(tr.tasks)):
                assert iterative_best_case(s, i, j) >= sound_best_case(s, i, j) - 1e-12

    def test_iterative_below_worst_case(self):
        s = sensor_fusion_system()
        result = analyze(s)
        for key, ta in result.tasks.items():
            assert iterative_best_case(s, *key) <= ta.wcrt + 1e-9

    def test_full_map(self):
        s = sensor_fusion_system()
        bc = best_case_response_times(s)
        assert set(bc) == {(i, j) for i, tr in enumerate(s.transactions)
                           for j in range(len(tr.tasks))}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            best_case_response_times(sensor_fusion_system(), method="psychic")
