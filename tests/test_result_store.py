"""Content-addressed result store: hashing, persistence, warm reruns.

The store's contract (ISSUE 6 acceptance criteria): canonical hashes are
deterministic and insensitive to cosmetic/derived state, the directory
store round-trips values atomically and treats any damage as a miss, and
a ``Campaign.run(store=...)`` rerun over a warmed store is bit-identical
to the cold run -- same cells, same verdicts, same accounting -- with
``store_hits == n_analyses`` and zero new solves.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.batch import (
    Campaign,
    CampaignSpec,
    ResultStore,
    StoreKey,
    analysis_config_hash,
    campaign_config_hash,
    canonical_json,
    content_hash,
    spec_hash,
    store_reachable_digests,
    system_hash,
)
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        grid={"utilization": (0.3, 0.6, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("gauss_seidel",),
        systems_per_cell=3,
        seed=7,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def two_task_system() -> TransactionSystem:
    return TransactionSystem(
        transactions=[
            Transaction(
                period=10.0,
                deadline=10.0,
                tasks=[
                    Task(wcet=2.0, platform=0, priority=2, offset=1.0,
                         jitter=0.5),
                    Task(wcet=1.0, platform=0, priority=1),
                ],
                name="G1",
            ),
            Transaction(
                period=20.0,
                tasks=[Task(wcet=3.0, platform=0, priority=3)],
                name="G2",
            ),
        ],
        platforms=[DedicatedPlatform()],
    )


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )
        assert canonical_json({"a": 2, "b": 1}) == '{"a":2,"b":1}'

    def test_float_shortest_repr(self):
        assert canonical_json(0.3) == "0.3"
        assert canonical_json(0.1 + 0.2) == "0.30000000000000004"

    def test_negative_zero_collapses(self):
        assert canonical_json(-0.0) == canonical_json(0.0)

    def test_nan_and_infinity_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                canonical_json({"x": bad})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="string keys"):
            canonical_json({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            canonical_json({"x": object()})

    def test_numpy_scalars_encode_as_python(self):
        np = pytest.importorskip("numpy")
        assert canonical_json(np.float64(0.3)) == canonical_json(0.3)
        assert canonical_json([np.int64(4)]) == canonical_json([4])

    def test_tuples_encode_as_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_content_hash_is_sha256_of_canonical(self):
        import hashlib

        obj = {"a": [1, 2.5, None, True]}
        expected = hashlib.sha256(
            canonical_json(obj).encode("utf-8")
        ).hexdigest()
        assert content_hash(obj) == expected


class TestSystemHash:
    def test_deterministic(self):
        assert system_hash(two_task_system()) == system_hash(
            two_task_system()
        )

    def test_invariant_under_in_place_analysis(self):
        # The holistic analysis overwrites derived offset/jitter of
        # non-first tasks in place; the hash must see the same input.
        system = sensor_fusion_system()
        before = system_hash(system)
        analyze(system, in_place=True)
        assert system_hash(system) == before

    def test_invariant_under_names_and_meta(self):
        a = two_task_system()
        b = two_task_system()
        for tr in b.transactions:
            tr.name = f"renamed-{tr.name}"
        assert system_hash(a) == system_hash(b)

    def test_sensitive_to_wcet(self):
        a = two_task_system()
        b = two_task_system()
        b.transactions[0].tasks[1].wcet = 1.5
        assert system_hash(a) != system_hash(b)

    def test_sensitive_to_first_task_offset(self):
        a = two_task_system()
        b = two_task_system()
        b.transactions[0].tasks[0].offset = 2.0
        assert system_hash(a) != system_hash(b)

    def test_insensitive_to_derived_later_task_jitter(self):
        a = two_task_system()
        b = two_task_system()
        b.transactions[0].tasks[1].jitter = 4.25
        assert system_hash(a) == system_hash(b)


class TestConfigHashes:
    def test_campaign_config_folds_methods_and_levels(self):
        base = small_spec()
        assert campaign_config_hash(base) == campaign_config_hash(
            small_spec()
        )
        # Different method tuple, warm-start flag or ladder: different
        # execution context, cells must not be served across.
        assert campaign_config_hash(base) != campaign_config_hash(
            small_spec(methods=("gauss_seidel", "reduced"))
        )
        assert campaign_config_hash(base) != campaign_config_hash(
            small_spec(warm_start=False)
        )
        assert campaign_config_hash(base) != campaign_config_hash(
            small_spec(grid={"utilization": (0.3, 0.6)})
        )

    def test_campaign_config_ignores_seed_and_replicates(self):
        # Seeds/replicate counts shape *which* systems exist, not how a
        # given system's cell is executed -- reuse across them is the
        # whole point (replicate extensions hit the store).
        base = small_spec()
        assert campaign_config_hash(base) == campaign_config_hash(
            small_spec(seed=99, systems_per_cell=10)
        )

    def test_spec_hash_covers_seed(self):
        assert spec_hash(small_spec()) != spec_hash(small_spec(seed=8))
        assert spec_hash(small_spec()) == spec_hash(small_spec().to_dict())

    def test_analysis_config_hash(self):
        a = AnalysisConfig()
        assert analysis_config_hash(a) == analysis_config_hash(
            AnalysisConfig()
        )
        assert analysis_config_hash(a) != analysis_config_hash(
            AnalysisConfig(method="exact")
        )


class TestResultStore:
    def key(self, n=0) -> StoreKey:
        return StoreKey(f"sys{n}", "cfg", 0.3, "gauss_seidel")

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(self.key()) is None
        assert store.put(self.key(), {"x": 1}) is True
        assert store.get(self.key()) == {"x": 1}

    def test_put_if_absent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(self.key(), {"x": 1})
        assert store.put(self.key(), {"x": 2}) is False
        assert store.get(self.key()) == {"x": 1}

    def test_nan_value_round_trips(self, tmp_path):
        # Cell metrics may hold NaN (diverged max_wcrt_ratio); the store
        # value encoding must accept it even though key hashing rejects it.
        import math

        store = ResultStore(tmp_path / "store")
        store.put(self.key(), {"ratio": float("nan")})
        assert math.isnan(store.get(self.key())["ratio"])

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(self.key(), {"x": 1})
        store._path(self.key()).write_text("{not json", encoding="utf-8")
        assert store.get(self.key()) is None

    def test_identity_mismatch_reads_as_miss(self, tmp_path):
        # A file whose content belongs to a different key (hash collision,
        # botched copy) must read as a miss, never as a wrong hit.
        store = ResultStore(tmp_path / "store")
        store.put(self.key(0), {"x": 1})
        path1 = store._path(self.key(1))
        path1.parent.mkdir(parents=True, exist_ok=True)
        path1.write_text(
            store._path(self.key(0)).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert store.get(self.key(1)) is None

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.stats().entries == 0
        store.put(self.key(0), {"x": 1})
        store.put(self.key(1), {"x": 2})
        stats = store.stats()
        assert stats.entries == 2
        assert stats.bytes > 0

    def test_unwritable_root_raises(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        root = tmp_path / "ro"
        root.mkdir()
        root.chmod(0o500)
        try:
            with pytest.raises(OSError):
                ResultStore(root).put(self.key(), {"x": 1})
        finally:
            root.chmod(0o700)


def run_cold_warm(spec, tmp_path, workers=1):
    """Cold run into a fresh store, then a warm rerun; both results."""
    store = ResultStore(tmp_path / "store")
    cold = Campaign(spec).run(workers=workers, store=store)
    warm = Campaign(spec).run(workers=workers, store=store)
    return cold, warm, store


def assert_warm_bit_identical(cold, warm, spec):
    # Served cells carry the stored time_s, so full byte-for-byte cell
    # equality holds for warm-vs-cold (not just timing-free metrics).
    assert json.dumps(warm.to_dict()["cells"]) == json.dumps(
        cold.to_dict()["cells"]
    )
    n = spec.n_analyses()
    assert cold.store_hits == 0
    assert cold.store_misses == n
    assert warm.store_hits == n
    assert warm.store_misses == 0


class TestCampaignStore:
    def test_cold_matches_storeless_reference(self, tmp_path):
        spec = small_spec()
        reference = Campaign(spec).run(workers=1)
        cold, warm, _ = run_cold_warm(spec, tmp_path)
        # time_s is wall clock and differs across independent solves;
        # compare the timing-free metric view against the reference.
        assert cold.metrics() == reference.metrics()
        assert_warm_bit_identical(cold, warm, spec)

    def test_warm_rerun_sweep(self, tmp_path):
        spec = small_spec()
        cold, warm, _ = run_cold_warm(spec, tmp_path)
        assert_warm_bit_identical(cold, warm, spec)

    def test_warm_rerun_pruned_verdict(self, tmp_path):
        # Pruned chains store solved *and* inferred cells, so the warm
        # rerun serves the whole chain without re-bisecting.
        spec = small_spec(methods=("verdict",),
                          grid={"utilization": (0.3, 0.5, 0.7, 0.9)})
        cold, warm, _ = run_cold_warm(spec, tmp_path)
        assert_warm_bit_identical(cold, warm, spec)

    def test_warm_rerun_multi_method(self, tmp_path):
        spec = small_spec(methods=("gauss_seidel", "reduced"))
        cold, warm, _ = run_cold_warm(spec, tmp_path)
        assert_warm_bit_identical(cold, warm, spec)

    def test_warm_rerun_pool(self, tmp_path):
        spec = small_spec()
        cold, warm, _ = run_cold_warm(spec, tmp_path, workers=2)
        assert_warm_bit_identical(cold, warm, spec)
        inline = Campaign(spec).run(workers=1)
        assert cold.metrics() == inline.metrics()

    def test_warm_rerun_no_warm_start(self, tmp_path):
        spec = small_spec(warm_start=False)
        cold, warm, _ = run_cold_warm(spec, tmp_path)
        assert_warm_bit_identical(cold, warm, spec)

    def test_replicate_extension_reuses_original_cells(self, tmp_path):
        # Growing systems_per_cell keeps the original replicates' seeds,
        # so their cells hit the store and only the new replicates solve.
        store = ResultStore(tmp_path / "store")
        small = small_spec(systems_per_cell=3)
        big = small_spec(systems_per_cell=5)
        Campaign(small).run(workers=1, store=store)
        extended = Campaign(big).run(workers=1, store=store)
        assert extended.store_hits == small.n_analyses()
        assert extended.store_misses == (
            big.n_analyses() - small.n_analyses()
        )
        assert extended.metrics() == Campaign(big).run(workers=1).metrics()

    def test_partial_store_rerun_identical(self, tmp_path):
        # Delete half the entries: the rerun serves what remains, solves
        # the rest, and the result is still identical to the cold run.
        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        cold = Campaign(spec).run(workers=1, store=store)
        files = sorted(store.root.glob("??/*.json"))
        assert len(files) == spec.n_analyses()
        for path in files[::2]:
            path.unlink()
        kept = len(files) - len(files[::2])
        partial = Campaign(spec).run(workers=1, store=store)
        assert partial.metrics() == cold.metrics()
        assert partial.store_hits + partial.store_misses == spec.n_analyses()
        # Sweep serving is per-step all-or-nothing, so hits may undershoot
        # the surviving entry count but never exceed it.
        assert partial.store_hits <= kept
        # Every miss was re-stored: the store is whole again.
        assert len(sorted(store.root.glob("??/*.json"))) == spec.n_analyses()

    def test_store_accounting_surfaces(self, tmp_path):
        spec = small_spec()
        _, warm, _ = run_cold_warm(spec, tmp_path)
        acct = warm.accounting()
        assert acct["store"] == {
            "hits": spec.n_analyses(),
            "misses": 0,
        }
        assert "result store:" in warm.format_summary()

    def test_storeless_run_reports_zero(self):
        result = Campaign(small_spec()).run(workers=1)
        assert result.store_hits == 0
        assert result.store_misses == 0
        assert "result store:" not in result.format_summary()


class TestSaveJsonDurability:
    def test_save_json_fsyncs_before_replace(self, tmp_path, monkeypatch):
        # Regression (ISSUE 6): the atomic-rename checkpoint write must
        # fsync the temp file first, or a crash can leave a zero-length
        # "complete" checkpoint that wedges resume.
        import os

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b)),
        )
        result = Campaign(small_spec()).run(workers=1, max_cells=2)
        path = result.save_json(tmp_path / "out.json")
        assert "fsync" in events
        assert events.index("fsync") < events.index("replace")
        assert json.loads(path.read_text(encoding="utf-8"))["cells"]


class TestStoreLifecycle:
    """store-stats / store-gc backend: histograms and criteria-gated GC."""

    def key(self, n=0) -> StoreKey:
        return StoreKey(f"sys{n}", "cfg", 0.3, "gauss_seidel")

    def fill(self, tmp_path, ages_s, now=1_000_000.0):
        """A store with one entry per requested age (mtime back-dated)."""
        import os

        store = ResultStore(tmp_path / "store")
        for n, age in enumerate(ages_s):
            store.put(self.key(n), {"n": n})
            path = store._path(self.key(n))
            os.utime(path, (now - age, now - age))
        return store, now

    def test_age_histogram_buckets(self, tmp_path):
        store, now = self.fill(
            tmp_path, [60.0, 7200.0, 90_000.0, 800_000.0, 900_000.0]
        )
        assert store.age_histogram(now=now) == [
            ("<=1h", 1), ("<=1d", 1), ("<=7d", 1), (">7d", 2),
        ]

    def test_gc_without_criteria_removes_nothing(self, tmp_path):
        store, now = self.fill(tmp_path, [10.0, 1e6])
        swept = store.gc(now=now)
        assert swept.removed == 0 and swept.kept == 2
        assert store.stats().entries == 2

    def test_gc_by_age(self, tmp_path):
        store, now = self.fill(tmp_path, [10.0, 5_000.0, 90_000.0])
        dry = store.gc(older_than_s=3600.0, dry_run=True, now=now)
        assert dry.removed == 2 and dry.kept == 1
        assert store.stats().entries == 3  # dry run deleted nothing
        swept = store.gc(older_than_s=3600.0, now=now)
        assert swept.removed == 2 and swept.kept == 1
        assert swept.bytes_freed > 0
        assert store.stats().entries == 1
        assert store.get(self.key(0)) == {"n": 0}  # the young one survived

    def test_gc_by_reachability(self, tmp_path):
        store, now = self.fill(tmp_path, [10.0, 10.0, 10.0])
        keep = {store._path(self.key(n)).stem for n in (0, 2)}
        swept = store.gc(keep_digests=keep, now=now)
        assert swept.removed == 1 and swept.kept == 2
        assert store.get(self.key(1)) is None

    def test_gc_criteria_intersect(self, tmp_path):
        """Both criteria must condemn an entry: old-but-reachable and
        young-but-unreachable each survive."""
        store, now = self.fill(tmp_path, [90_000.0, 90_000.0, 10.0])
        keep = {store._path(self.key(0)).stem}  # 0: old but reachable
        swept = store.gc(older_than_s=3600.0, keep_digests=keep, now=now)
        assert swept.removed == 1  # only 1: old AND unreachable
        assert store.get(self.key(0)) is not None
        assert store.get(self.key(1)) is None
        assert store.get(self.key(2)) is not None  # young, kept by age

    def test_gc_sweeps_day_old_tmp_orphans(self, tmp_path):
        import os

        store, now = self.fill(tmp_path, [10.0])
        fan = store._path(self.key(0)).parent
        stale = fan / "deadbeef.json.tmp.1234"
        fresh = fan / "deadbeef.json.tmp.5678"
        for tmp, age in ((stale, 100_000.0), (fresh, 10.0)):
            tmp.write_text("torn")
            os.utime(tmp, (now - age, now - age))
        swept = store.gc(older_than_s=1e9, now=now)  # condemns no entry
        assert swept.removed == 0
        assert swept.tmp_removed == 1
        assert not stale.exists() and fresh.exists()

    def test_gc_prunes_emptied_fanout_dirs(self, tmp_path):
        store, now = self.fill(tmp_path, [90_000.0])
        fan = store._path(self.key(0)).parent
        swept = store.gc(older_than_s=3600.0, now=now)
        assert swept.removed == 1
        assert not fan.exists()

    def test_reachable_digests_cover_exactly_a_runs_entries(self, tmp_path):
        """store_reachable_digests must predict the precise key set a
        campaign run consults -- a reachability GC right after a run
        removes nothing of that run and everything foreign."""
        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        Campaign(spec).run(workers=1, store=store)
        reachable = store_reachable_digests(spec)
        on_disk = {p.stem for p, _ in store.iter_entries()}
        assert on_disk == reachable
        # Plant a foreign entry: only it is condemned.
        store.put(StoreKey("alien", "cfg", 0.1, "m"), {"x": 1})
        swept = store.gc(keep_digests=reachable)
        assert swept.removed == 1
        assert {p.stem for p, _ in store.iter_entries()} == reachable
        # And the warm rerun still serves everything from the store.
        warm = Campaign(spec).run(workers=1, store=store)
        assert warm.store_hits == spec.n_analyses()
        assert warm.store_misses == 0


class TestStoreCli:
    def seeded_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(StoreKey("s0", "c", 0.3, "m"), {"x": 1})
        store.put(StoreKey("s1", "c", 0.6, "m"), {"x": 2})
        return store

    def test_store_stats_table_and_json(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store = self.seeded_store(tmp_path)
        assert cli_main(["store-stats", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert "age histogram" in out
        assert cli_main(["store-stats", str(store.root), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["bytes"] > 0
        assert set(payload["age_histogram"]) == {
            "<=1h", "<=1d", "<=7d", ">7d",
        }

    def test_store_stats_rejects_missing_dir(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["store-stats", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_store_gc_requires_a_criterion(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store = self.seeded_store(tmp_path)
        assert cli_main(["store-gc", str(store.root)]) == 2
        assert "prune everything" in capsys.readouterr().err
        assert store.stats().entries == 2

    def test_store_gc_rejects_garbage_age(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store = self.seeded_store(tmp_path)
        rc = cli_main(["store-gc", str(store.root), "--older-than", "soon"])
        assert rc == 2
        assert "--older-than" in capsys.readouterr().err

    def test_store_gc_by_age_with_dry_run(self, tmp_path, capsys):
        import os
        import time

        from repro.cli import main as cli_main

        store = self.seeded_store(tmp_path)
        old = store._path(StoreKey("s0", "c", 0.3, "m"))
        back = time.time() - 8 * 86400
        os.utime(old, (back, back))
        rc = cli_main(
            ["store-gc", str(store.root), "--older-than", "7d", "--dry-run"]
        )
        assert rc == 0
        assert "would remove 1 entr(ies)" in capsys.readouterr().out
        assert store.stats().entries == 2
        rc = cli_main(["store-gc", str(store.root), "--older-than", "7d"])
        assert rc == 0
        assert "removed 1 entr(ies)" in capsys.readouterr().out
        assert store.stats().entries == 1

    def test_store_gc_by_spec_accepts_result_json(self, tmp_path, capsys):
        """--spec takes a bare spec JSON or a whole campaign result JSON
        (its spec block is used), matching what dispatch work dirs and
        --json outputs actually contain."""
        from repro.cli import main as cli_main

        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        result = Campaign(spec).run(workers=1, store=store)
        store.put(StoreKey("alien", "cfg", 0.1, "m"), {"x": 1})
        result_json = tmp_path / "result.json"
        result.save_json(result_json)
        rc = cli_main(
            ["store-gc", str(store.root), "--spec", str(result_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "reachable" in out
        assert "removed 1 entr(ies)" in out
        assert store.stats().entries == spec.n_analyses()
