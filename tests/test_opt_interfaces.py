"""Tests for component interface generation and composition."""

import math

import pytest

from repro.analysis.compositional import LocalTask, fp_component_schedulable
from repro.opt import (
    component_interface,
    compose_interfaces,
)
from repro.platforms.linear import LinearSupplyPlatform


def small_component(scale=1.0):
    return [
        LocalTask(wcet=1.0 * scale, period=10.0, priority=2, name="a"),
        LocalTask(wcet=2.0 * scale, period=25.0, priority=1, name="b"),
    ]


class TestComponentInterface:
    def test_curve_nondecreasing_in_delay(self):
        iface = component_interface(small_component(), [0.0, 1.0, 2.0, 4.0])
        rates = [p.rate for p in iface.points]
        assert all(b >= a - 1e-3 for a, b in zip(rates, rates[1:]))

    def test_rate_at_least_utilization(self):
        iface = component_interface(small_component(), [0.0, 2.0])
        for p in iface.points:
            assert p.rate >= iface.utilization - 1e-6

    def test_points_are_feasible(self):
        tasks = small_component()
        iface = component_interface(tasks, [0.0, 1.0, 3.0], rate_tol=1e-3)
        for p in iface.points:
            platform = LinearSupplyPlatform(min(1.0, p.rate + 2e-3), p.delay, 0.0)
            assert fp_component_schedulable(tasks, platform)

    def test_points_are_tight(self):
        tasks = small_component()
        iface = component_interface(tasks, [1.0], rate_tol=1e-3)
        p = iface.points[0]
        below = LinearSupplyPlatform(max(1e-6, p.rate - 5e-3), p.delay, 0.0)
        assert not fp_component_schedulable(tasks, below)

    def test_impossible_delay_reports_inf(self):
        # Deadline 5, delay 10: no rate helps.
        tasks = [LocalTask(wcet=1.0, period=20.0, deadline=5.0)]
        iface = component_interface(tasks, [10.0])
        assert math.isinf(iface.points[0].rate)

    def test_edf_interface_no_larger_than_fp(self):
        """EDF dominates FP for independent tasks: its min rates are <=."""
        tasks = [
            LocalTask(wcet=2.0, period=10.0, priority=2),
            LocalTask(wcet=4.0, period=15.0, priority=1),
        ]
        fp = component_interface(tasks, [0.0, 2.0], scheduler="fp")
        edf = component_interface(tasks, [0.0, 2.0], scheduler="edf")
        for a, b in zip(edf.points, fp.points):
            assert a.rate <= b.rate + 1e-3

    def test_rejects_bad_scheduler(self):
        with pytest.raises(ValueError):
            component_interface(small_component(), [0.0], scheduler="rr")

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            component_interface(small_component(), [-1.0])

    def test_min_rate_at(self):
        iface = component_interface(small_component(), [0.0, 2.0, 4.0])
        assert iface.min_rate_at(0.0) <= iface.points[0].rate + 1e-9
        assert math.isinf(iface.min_rate_at(99.0))


class TestComposition:
    def test_two_light_components_fit(self):
        a = component_interface(small_component(0.5), [1.0, 4.0], name="A")
        b = component_interface(small_component(0.5), [1.0, 4.0], name="B")
        comp = compose_interfaces([a, b])
        assert comp.feasible
        assert comp.total_bandwidth <= 1.0 + 1e-9
        assert len(comp.selection) == 2

    def test_heavy_components_rejected(self):
        a = component_interface(small_component(3.0), [0.5], name="A")
        b = component_interface(small_component(3.0), [0.5], name="B")
        comp = compose_interfaces([a, b])
        assert not comp.feasible
        assert comp.total_bandwidth > 1.0

    def test_infeasible_component_rejected(self):
        impossible = component_interface(
            [LocalTask(wcet=1.0, period=20.0, deadline=5.0)], [10.0], name="X"
        )
        comp = compose_interfaces([impossible])
        assert not comp.feasible

    def test_delay_filter(self):
        a = component_interface(small_component(0.5), [1.0, 4.0], name="A")
        comp = compose_interfaces([a], delays=[4.0])
        assert comp.feasible
        assert comp.selection[0].delay == 4.0
