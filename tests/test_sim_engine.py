"""Unit tests for the simulator core."""

import pytest

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.sim import ReleasePolicy, SimulationConfig, Simulator, simulate


def one_task_system(wcet=2.0, period=10.0, platform=None):
    t = Transaction(
        period=period, tasks=[Task(wcet=wcet, platform=0, priority=1)], name="G"
    )
    return TransactionSystem(
        transactions=[t], platforms=[platform or DedicatedPlatform()]
    )


class TestBasics:
    def test_single_task_response(self):
        trace = simulate(one_task_system(), config=SimulationConfig(horizon=100.0))
        st = trace.tasks[(0, 0)]
        assert st.count == 10
        assert st.max_response == pytest.approx(2.0)
        assert st.min_response == pytest.approx(2.0)
        assert st.misses == 0

    def test_fluid_platform_scales_execution(self):
        trace = simulate(
            one_task_system(platform=LinearSupplyPlatform(0.5)),
            config=SimulationConfig(horizon=100.0),
        )
        assert trace.tasks[(0, 0)].max_response == pytest.approx(4.0)

    def test_simulator_single_use(self):
        sim = Simulator(one_task_system(), SimulationConfig(horizon=50.0))
        sim.run()
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()

    def test_event_log_recorded(self):
        cfg = SimulationConfig(horizon=25.0, record_events=True)
        trace = simulate(one_task_system(), config=cfg)
        kinds = {k for _, k, _ in trace.events}
        assert kinds == {"ready", "done"}

    def test_release_counts(self):
        trace = simulate(one_task_system(period=10.0),
                         config=SimulationConfig(horizon=95.0))
        assert trace.released == [10]


class TestPreemption:
    def test_high_priority_preempts(self):
        hi = Transaction(
            period=4.0, tasks=[Task(wcet=1.0, platform=0, priority=2)], name="hi"
        )
        lo = Transaction(
            period=20.0, tasks=[Task(wcet=3.0, platform=0, priority=1)], name="lo"
        )
        s = TransactionSystem(transactions=[hi, lo], platforms=[DedicatedPlatform()])
        trace = simulate(s, config=SimulationConfig(horizon=200.0))
        # lo: 3 own + 1 hi (released together) = 4 at the synchronous instant.
        assert trace.tasks[(1, 0)].max_response == pytest.approx(4.0)
        assert trace.tasks[(0, 0)].max_response == pytest.approx(1.0)

    def test_edf_orders_by_deadline(self):
        a = Transaction(
            period=10.0, deadline=3.0,
            tasks=[Task(wcet=1.0, platform=0, priority=1)], name="tight",
        )
        b = Transaction(
            period=10.0, deadline=9.0,
            tasks=[Task(wcet=1.0, platform=0, priority=99)], name="loose",
        )
        s = TransactionSystem(transactions=[a, b], platforms=[DedicatedPlatform()])
        # Under EDF the tight-deadline job runs first despite lower priority.
        trace = simulate(
            s, config=SimulationConfig(horizon=50.0, scheduler="edf")
        )
        assert trace.tasks[(0, 0)].max_response == pytest.approx(1.0)
        assert trace.tasks[(1, 0)].max_response == pytest.approx(2.0)


class TestChains:
    def test_two_stage_pipeline(self):
        tr = Transaction(
            period=10.0,
            tasks=[
                Task(wcet=1.0, platform=0, priority=1),
                Task(wcet=2.0, platform=1, priority=1),
            ],
            name="chain",
        )
        s = TransactionSystem(
            transactions=[tr],
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        trace = simulate(s, config=SimulationConfig(horizon=100.0))
        assert trace.tasks[(0, 0)].max_response == pytest.approx(1.0)
        assert trace.tasks[(0, 1)].max_response == pytest.approx(3.0)

    def test_precedence_respected(self):
        """Second task never completes before the first."""
        tr = Transaction(
            period=5.0,
            tasks=[
                Task(wcet=1.0, platform=0, priority=1),
                Task(wcet=1.0, platform=0, priority=2),
            ],
        )
        s = TransactionSystem(transactions=[tr], platforms=[DedicatedPlatform()])
        trace = simulate(s, config=SimulationConfig(horizon=50.0))
        assert trace.tasks[(0, 1)].min_response >= trace.tasks[(0, 0)].min_response


class TestDeadlineAccounting:
    def test_misses_counted(self):
        t1 = Transaction(period=10.0, deadline=1.0,
                         tasks=[Task(wcet=2.0, platform=0, priority=1)])
        s = TransactionSystem(transactions=[t1], platforms=[DedicatedPlatform()])
        trace = simulate(s, config=SimulationConfig(horizon=95.0))
        assert trace.tasks[(0, 0)].misses == 10
        assert trace.total_misses() == 10

    def test_observed_end_to_end(self):
        tr = Transaction(
            period=10.0,
            tasks=[
                Task(wcet=1.0, platform=0, priority=1),
                Task(wcet=1.0, platform=0, priority=1),
            ],
        )
        s = TransactionSystem(transactions=[tr], platforms=[DedicatedPlatform()])
        trace = simulate(s, config=SimulationConfig(horizon=50.0))
        e2e = trace.observed_end_to_end()
        assert e2e[0] == trace.tasks[(0, 1)].max_response


class TestReleasePolicies:
    def test_phased_releases(self):
        cfg = SimulationConfig(
            horizon=50.0, release=ReleasePolicy(mode="phased", phases=[3.0])
        )
        trace = simulate(one_task_system(period=10.0), config=cfg)
        # Releases at 3, 13, ..., 43 -> 5 within the horizon.
        assert trace.released == [5]

    def test_phase_count_mismatch_raises(self):
        cfg = SimulationConfig(
            horizon=10.0, release=ReleasePolicy(mode="phased", phases=[1.0, 2.0])
        )
        with pytest.raises(ValueError, match="phases"):
            simulate(one_task_system(), config=cfg)

    def test_random_phases_reproducible(self):
        cfg = lambda: SimulationConfig(  # noqa: E731
            horizon=100.0, release=ReleasePolicy(mode="random", seed=9)
        )
        a = simulate(one_task_system(), config=cfg())
        b = simulate(one_task_system(), config=cfg())
        assert a.tasks[(0, 0)].max_response == b.tasks[(0, 0)].max_response

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ReleasePolicy(mode="chaotic")


class TestConfigValidation:
    def test_bad_scheduler(self):
        with pytest.raises(ValueError):
            SimulationConfig(scheduler="fifo")

    def test_bad_placement(self):
        with pytest.raises(ValueError):
            SimulationConfig(placement="center")

    def test_supply_count_mismatch(self):
        from repro.sim.supply import AlwaysOnSupply

        with pytest.raises(ValueError, match="supplies"):
            Simulator(one_task_system(), supplies=[AlwaysOnSupply(), AlwaysOnSupply()])
