"""Unit tests for linear and dedicated platforms."""

import pytest

from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform


class TestLinearSupplyPlatform:
    def test_triple_round_trip(self):
        p = LinearSupplyPlatform(0.4, 1.0, 1.0)
        assert p.triple() == (0.4, 1.0, 1.0)

    def test_zmin_shape(self):
        p = LinearSupplyPlatform(0.5, 2.0, 0.0)
        assert p.zmin(0.0) == 0.0
        assert p.zmin(2.0) == 0.0  # still inside the delay
        assert p.zmin(4.0) == pytest.approx(1.0)

    def test_zmax_jump_at_zero(self):
        p = LinearSupplyPlatform(0.5, 0.0, 2.0)
        assert p.zmax(0.0) == 0.0
        assert p.zmax(1e-9) == pytest.approx(2.0, abs=1e-6)

    def test_zmax_negative_time_is_zero(self):
        assert LinearSupplyPlatform(0.5).zmax(-1.0) == 0.0

    def test_rejects_rate_above_one_by_default(self):
        with pytest.raises(ValueError):
            LinearSupplyPlatform(1.5)

    def test_superunit_opt_in(self):
        p = LinearSupplyPlatform(125000.0, allow_superunit=True)
        assert p.rate == 125000.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            LinearSupplyPlatform(0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LinearSupplyPlatform(0.5, -1.0)

    def test_min_service_time(self):
        p = LinearSupplyPlatform(0.2, 2.0, 1.0)
        # Delta + C/alpha: 2 + 1/0.2 = 7 (the tau_1_4 term in the paper).
        assert p.min_service_time(1.0) == pytest.approx(7.0)
        assert p.min_service_time(0.0) == 0.0

    def test_best_service_time(self):
        p = LinearSupplyPlatform(0.2, 2.0, 1.0)
        # max(0, C/alpha - beta): 0.8/0.2 - 1 = 3 (Table 1 phi_1_2).
        assert p.best_service_time(0.8) == pytest.approx(3.0)
        assert p.best_service_time(0.0) == 0.0

    def test_linear_envelopes_equal_supply(self):
        p = LinearSupplyPlatform(0.3, 1.5, 0.7)
        for t in (0.0, 0.5, 1.5, 3.0, 10.0):
            assert p.zmin(t) == p.linear_lower(t)
            assert p.zmax(t) == p.linear_upper(t)

    def test_sample_vectorized(self):
        pytest.importorskip("numpy")
        p = LinearSupplyPlatform(0.5, 1.0, 0.5)
        zs = p.sample_zmin([0.0, 1.0, 3.0])
        assert zs.tolist() == [0.0, 0.0, 1.0]


class TestDedicatedPlatform:
    def test_is_identity_triple(self):
        assert DedicatedPlatform().triple() == (1.0, 0.0, 0.0)

    def test_supply_is_time(self):
        p = DedicatedPlatform()
        assert p.zmin(5.0) == 5.0
        assert p.zmax(5.0) == 5.0

    def test_heterogeneous_speed(self):
        p = DedicatedPlatform(speed=0.5)
        assert p.rate == 0.5
        assert p.zmin(4.0) == 2.0

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            DedicatedPlatform(speed=0.0)
