"""Unit tests for SystemAssembly wiring, placement and validation."""

import pytest

from repro.components.assembly import Binding, SystemAssembly
from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.components.validation import validate_assembly
from repro.platforms.linear import DedicatedPlatform
from repro.platforms.network import Message


def server(mit=5.0):
    return Component(
        name="Server",
        provided=[ProvidedMethod("serve", mit=mit)],
        threads=[
            EventThread(
                name="h", realizes="serve", priority=1,
                body=[TaskStep("work", wcet=1.0)],
            )
        ],
    )


def client(period=50.0, calls=1):
    body = [TaskStep("pre", wcet=1.0)]
    body += [CallStep("svc")] * calls
    return Component(
        name="Client",
        required=[RequiredMethod("svc", mit=period / max(calls, 1))],
        threads=[
            PeriodicThread(name="main", priority=2, period=period, body=body)
        ],
    )


def wired_assembly(period=50.0, mit=5.0, calls=1):
    asm = SystemAssembly(name="t")
    asm.add_instance("S", server(mit=mit))
    asm.add_instance("C", client(period=period, calls=calls))
    asm.add_platform("P0", DedicatedPlatform())
    asm.add_platform("P1", DedicatedPlatform())
    asm.place("S", platform="P0")
    asm.place("C", platform="P1")
    asm.bind("C", "svc", "S", "serve")
    return asm


class TestConstruction:
    def test_duplicate_instance_rejected(self):
        asm = SystemAssembly()
        asm.add_instance("A", server())
        with pytest.raises(ValueError, match="already exists"):
            asm.add_instance("A", server())

    def test_duplicate_platform_rejected(self):
        asm = SystemAssembly()
        asm.add_platform("P", DedicatedPlatform())
        with pytest.raises(ValueError, match="already exists"):
            asm.add_platform("P", DedicatedPlatform())

    def test_duplicate_binding_rejected(self):
        asm = wired_assembly()
        with pytest.raises(ValueError, match="already bound"):
            asm.bind("C", "svc", "S", "serve")

    def test_platform_index_order(self):
        asm = wired_assembly()
        assert asm.platform_index("P0") == 0
        assert asm.platform_index("P1") == 1
        with pytest.raises(KeyError):
            asm.platform_index("P9")

    def test_platform_of_instance(self):
        asm = wired_assembly()
        assert asm.platform_of("S") == 0
        with pytest.raises(KeyError, match="no placement"):
            asm.platform_of("ghost")

    def test_binding_messages_require_network(self):
        with pytest.raises(ValueError, match="without a network"):
            Binding(
                caller="C", required="svc", callee="S", provided="serve",
                request=Message(payload=10.0),
            )


class TestValidation:
    def test_clean_assembly(self):
        assert validate_assembly(wired_assembly()) == []

    def test_missing_placement_is_fatal(self):
        asm = wired_assembly()
        del asm.placements["C"]
        problems = validate_assembly(asm)
        assert any(p.kind == "placement" and p.fatal for p in problems)

    def test_unknown_platform_is_fatal(self):
        asm = wired_assembly()
        asm.placements["C"] = "Nowhere"
        problems = validate_assembly(asm)
        assert any("unknown platform" in p.message for p in problems)

    def test_unbound_call_is_fatal(self):
        asm = wired_assembly()
        del asm.bindings[("C", "svc")]
        problems = validate_assembly(asm)
        assert any(p.kind == "binding" and "not bound" in p.message for p in problems)

    def test_binding_to_missing_provider(self):
        asm = wired_assembly()
        asm.bindings[("C", "svc")] = Binding("C", "svc", "S", "ghost")
        problems = validate_assembly(asm)
        assert any("does not provide" in p.message for p in problems)

    def test_unrealized_provided_method(self):
        unrealized = Component(
            name="Lazy", provided=[ProvidedMethod("serve", mit=5.0)], threads=[]
        )
        asm = SystemAssembly()
        asm.add_instance("S", unrealized)
        asm.add_instance("C", client())
        asm.add_platform("P", DedicatedPlatform())
        asm.place("S", platform="P")
        asm.place("C", platform="P")
        asm.bind("C", "svc", "S", "serve")
        problems = validate_assembly(asm)
        assert any("no thread realizes" in p.message for p in problems)

    def test_mit_violation_is_fatal(self):
        # Client calls every 50; server sustains one call per 100 -> violation.
        asm = wired_assembly(period=50.0, mit=100.0)
        problems = validate_assembly(asm)
        assert any(p.kind == "mit" and p.fatal for p in problems)

    def test_multiple_call_sites_aggregate(self):
        # 2 calls per 50 time units = rate 1/25; MIT 30 can't sustain it.
        asm = wired_assembly(period=50.0, mit=30.0, calls=2)
        problems = validate_assembly(asm)
        assert any(p.kind == "mit" and p.fatal for p in problems)

    def test_caller_declaration_warning_not_fatal(self):
        # Caller declares MIT 50 but calls twice per period (actual 25).
        srv = server(mit=1.0)
        cl = Component(
            name="Client",
            required=[RequiredMethod("svc", mit=50.0)],
            threads=[
                PeriodicThread(
                    name="main", priority=1, period=50.0,
                    body=[TaskStep("a", wcet=1.0), CallStep("svc"), CallStep("svc")],
                )
            ],
        )
        asm = SystemAssembly()
        asm.add_instance("S", srv)
        asm.add_instance("C", cl)
        asm.add_platform("P", DedicatedPlatform())
        asm.place("S", platform="P")
        asm.place("C", platform="P")
        asm.bind("C", "svc", "S", "serve")
        problems = validate_assembly(asm)
        warnings = [p for p in problems if not p.fatal]
        assert any("declares MIT" in p.message for p in warnings)

    def test_rpc_cycle_detected(self):
        a = Component(
            name="A",
            provided=[ProvidedMethod("pa", mit=10.0)],
            required=[RequiredMethod("rb", mit=10.0)],
            threads=[
                EventThread(
                    name="h", realizes="pa", priority=1,
                    body=[TaskStep("w", wcet=0.1), CallStep("rb")],
                )
            ],
        )
        b = Component(
            name="B",
            provided=[ProvidedMethod("pb", mit=10.0)],
            required=[RequiredMethod("ra", mit=10.0)],
            threads=[
                EventThread(
                    name="h", realizes="pb", priority=1,
                    body=[TaskStep("w", wcet=0.1), CallStep("ra")],
                )
            ],
        )
        asm = SystemAssembly()
        asm.add_instance("A", a)
        asm.add_instance("B", b)
        asm.add_platform("P", DedicatedPlatform())
        asm.place("A", platform="P")
        asm.place("B", platform="P")
        asm.bind("A", "rb", "B", "pb")
        asm.bind("B", "ra", "A", "pa")
        problems = validate_assembly(asm)
        assert any(p.kind == "cycle" and p.fatal for p in problems)
