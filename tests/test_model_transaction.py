"""Unit tests for the Transaction model."""

import pytest

from repro.model.task import Task
from repro.model.transaction import Transaction


def chain(*wcets, period=10.0, deadline=None, offsets=None):
    offsets = offsets or [0.0] * len(wcets)
    tasks = [
        Task(wcet=c, platform=0, priority=1, offset=o)
        for c, o in zip(wcets, offsets)
    ]
    return Transaction(period=period, deadline=deadline, tasks=tasks)


class TestConstruction:
    def test_deadline_defaults_to_period(self):
        assert chain(1.0).deadline == 10.0

    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError, match="at least one task"):
            Transaction(period=10.0, tasks=[])

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            chain(1.0, period=0.0)

    def test_rejects_non_task_members(self):
        with pytest.raises(TypeError):
            Transaction(period=10.0, tasks=[object()])

    def test_rejects_string_tasks(self):
        with pytest.raises(TypeError):
            Transaction(period=10.0, tasks="abc")


class TestContainer:
    def test_len_iter_getitem(self):
        tr = chain(1.0, 2.0, 3.0)
        assert len(tr) == 3
        assert [t.wcet for t in tr] == [1.0, 2.0, 3.0]
        assert tr[1].wcet == 2.0
        assert tr.last.wcet == 3.0


class TestDerived:
    def test_totals(self):
        tr = chain(1.0, 2.0)
        assert tr.total_wcet() == 3.0
        assert tr.total_bcet() == 3.0  # bcet defaults to wcet

    def test_reduced_offset(self):
        tr = chain(1.0, offsets=[25.0], period=10.0)
        assert tr.reduced_offset(0) == 5.0

    def test_utilization_on(self):
        tr = chain(2.0, 3.0, period=10.0)
        # all on platform 0: (2+3)/0.5/10 = 1.0
        assert tr.utilization_on(0, 0.5) == pytest.approx(1.0)
        assert tr.utilization_on(1, 0.5) == 0.0

    def test_platforms_used(self):
        tasks = [
            Task(wcet=1.0, platform=0, priority=1),
            Task(wcet=1.0, platform=2, priority=1),
        ]
        tr = Transaction(period=5.0, tasks=tasks)
        assert tr.platforms_used() == {0, 2}

    def test_validate_chain_accepts_monotone_offsets(self):
        chain(1.0, 1.0, offsets=[0.0, 3.0]).validate_chain()

    def test_validate_chain_rejects_decreasing_offsets(self):
        with pytest.raises(ValueError, match="precedes"):
            chain(1.0, 1.0, offsets=[3.0, 1.0]).validate_chain()
