"""Campaign engine: determinism, executor equivalence, export round trips.

The engine's contract (ISSUE 1 acceptance criteria): fixed seeds give
deterministic results, any worker count produces identical metrics, and
``CampaignResult`` survives JSON/CSV export.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    MethodOutcome,
    available_generators,
    available_methods,
    register_generator,
    register_method,
)
from repro.cli import main as cli_main


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        grid={"utilization": (0.3, 0.6, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("reduced",),
        systems_per_cell=3,
        seed=7,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSpec:
    def test_grid_counts(self):
        spec = small_spec(methods=("reduced", "dedicated"))
        assert spec.n_cells() == 9
        assert spec.n_analyses() == 18
        assert spec.sweep_axis == "utilization"

    def test_sweep_axis_sorted_ascending(self):
        spec = small_spec(grid={"utilization": (0.9, 0.3, 0.6)})
        assert spec.grid["utilization"] == (0.3, 0.6, 0.9)

    def test_seed_excludes_sweep_axis(self):
        # Same chain seed at every sweep level: paired samples.
        spec = small_spec()
        assert spec.cell_seed(0, 0) != spec.cell_seed(0, 1)
        assert spec.cell_seed(0, 0) != spec.cell_seed(1, 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError, match="unknown campaign method"):
            Campaign(small_spec(methods=("no_such_method",)))

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError, match="unknown generator"):
            Campaign(small_spec(generator="no_such_generator"))

    def test_bad_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="sweep_axis"):
            small_spec(sweep_axis="not_an_axis")

    def test_builtin_registries(self):
        assert "reduced" in available_methods()
        assert "compositional" in available_methods()
        assert "random_system" in available_generators()
        assert "paper" in available_generators()


class TestDeterminism:
    def test_fixed_seed_reproducible(self):
        spec = small_spec()
        a = Campaign(spec).run(workers=1)
        b = Campaign(spec).run(workers=1)
        assert a.metrics() == b.metrics()

    def test_serial_equals_parallel(self):
        spec = small_spec(methods=("reduced", "dedicated"))
        serial = Campaign(spec).run(workers=1)
        parallel = Campaign(spec).run(workers=2)
        assert serial.metrics() == parallel.metrics()
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "mean_time_s"} for r in rows
        ]
        assert strip(serial.acceptance()) == strip(parallel.acceptance())

    def test_chunk_size_does_not_change_results(self):
        spec = small_spec()
        a = Campaign(spec).run(workers=2, chunk_size=1)
        b = Campaign(spec).run(workers=2, chunk_size=5)
        assert a.metrics() == b.metrics()


class TestWarmStart:
    def test_warm_equals_cold_verdicts_and_ratios(self):
        spec_warm = small_spec(systems_per_cell=4)
        spec_cold = small_spec(systems_per_cell=4, warm_start=False)
        warm = Campaign(spec_warm).run(workers=1)
        cold = Campaign(spec_cold).run(workers=1)
        assert len(warm.cells) == len(cold.cells)
        for w, c in zip(warm.cells, cold.cells):
            assert (w.params, w.seed, w.method) == (c.params, c.seed, c.method)
            assert w.schedulable == c.schedulable
            assert w.max_wcrt_ratio == pytest.approx(
                c.max_wcrt_ratio, abs=1e-9
            ) or (w.max_wcrt_ratio == c.max_wcrt_ratio)  # inf == inf
        # The first sweep level is always cold; later levels are warm.
        assert any(c.warm_started for c in warm.cells)
        assert not any(c.warm_started for c in cold.cells)

    def test_warm_start_reported_in_accounting(self):
        result = Campaign(small_spec()).run(workers=1)
        acc = result.accounting()
        assert acc["warm"]["cells"] + acc["cold"]["cells"] == len(result.cells)
        assert acc["warm"]["cells"] > 0

    def test_driver_stats_agree_with_threaded_accounting(self):
        """The process-wide FixedPointStats counters captured per method
        call must agree with the evaluations threaded up through
        ScenarioOutcome -> ReducedResult -> SystemAnalysis."""
        result = Campaign(small_spec()).run(workers=1)
        for cell in result.cells:
            assert cell.extras["fp_evaluations"] == cell.evaluations
            assert cell.extras["fp_solves"] > 0
            assert cell.extras["fp_diverged"] >= 0


class TestExport:
    def test_json_round_trip(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.save_json(tmp_path / "campaign.json")
        loaded = CampaignResult.load_json(path)
        assert loaded.metrics() == result.metrics()
        assert loaded.to_dict() == result.to_dict()
        # The payload really is JSON (inf round trips via allow_nan).
        json.loads(path.read_text())

    def test_cells_csv(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.write_cells_csv(tmp_path / "cells.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 1 + len(result.cells)
        header = rows[0]
        assert "utilization" in header
        assert "schedulable" in header
        assert "evaluations" in header

    def test_acceptance_csv(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.write_acceptance_csv(tmp_path / "acceptance.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        # one aggregate row per (sweep level, method)
        assert len(rows) == 1 + 3
        assert "ratio" in rows[0]

    def test_format_summary_mentions_accounting(self):
        result = Campaign(small_spec()).run(workers=1)
        text = result.format_summary()
        assert "systems/s" in text
        assert "phase cache" in text


class TestExtensibility:
    def test_custom_generator_and_method(self):
        from repro.gen import RandomSystemSpec, random_system

        def tiny_generator(params, seed):
            return random_system(
                RandomSystemSpec(
                    n_platforms=1,
                    n_transactions=int(params.get("n_transactions", 1)),
                    tasks_per_transaction=(1, 1),
                    utilization=0.2,
                ),
                seed=seed,
            )

        def count_tasks(system, warm_start):
            return MethodOutcome(
                schedulable=True,
                extras={"total_tasks": system.total_tasks()},
            )

        register_generator("test_tiny", tiny_generator)
        register_method("test_count_tasks", count_tasks)
        spec = CampaignSpec(
            grid={"n_transactions": (1, 2)},
            methods=("test_count_tasks",),
            systems_per_cell=2,
            generator="test_tiny",
        )
        result = Campaign(spec).run(workers=1)
        assert len(result.cells) == 4
        for cell in result.cells:
            assert cell.extras["total_tasks"] == cell.params["n_transactions"]


class TestPaperGenerator:
    def test_paper_campaign_single_cell(self):
        spec = CampaignSpec(
            grid={},
            methods=("reduced", "compositional"),
            systems_per_cell=1,
            generator="paper",
        )
        result = Campaign(spec).run(workers=1)
        assert len(result.cells) == 2
        by_method = {c.method: c for c in result.cells}
        # The paper example is schedulable under both the holistic analysis
        # and the per-platform compositional baseline.
        assert by_method["reduced"].schedulable
        assert by_method["compositional"].schedulable
        assert by_method["reduced"].max_wcrt_ratio < 1.0


class TestCli:
    def test_campaign_subcommand(self, tmp_path, capsys):
        json_out = tmp_path / "result.json"
        rc = cli_main([
            "campaign",
            "--grid", "utilization=0.3,0.6",
            "--transactions", "2",
            "--platforms", "2",
            "--tasks", "1,2",
            "--systems", "2",
            "--methods", "reduced",
            "--workers", "1",
            "--json", str(json_out),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "systems/s" in out
        loaded = CampaignResult.load_json(json_out)
        assert len(loaded.cells) == 4

    def test_campaign_grid_parsing_errors(self, capsys):
        rc = cli_main(["campaign", "--grid", "garbage"])
        assert rc == 2


@pytest.mark.slow
class TestCampaignAtScale:
    """The ISSUE 1 acceptance criterion: a >= 500-system sweep whose
    aggregates are identical for 1 and 4 workers."""

    SPEC = CampaignSpec(
        grid={"utilization": tuple(0.3 + 0.06 * k for k in range(10))},
        base={
            "n_platforms": 2,
            "n_transactions": 3,
            "tasks_per_transaction": (1, 3),
        },
        methods=("reduced",),
        systems_per_cell=50,
        seed=1,
    )

    def test_500_system_sweep_parallel_equals_serial(self):
        assert self.SPEC.n_cells() >= 500
        serial = Campaign(self.SPEC).run(workers=1)
        parallel = Campaign(self.SPEC).run(workers=4)
        assert serial.metrics() == parallel.metrics()
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "mean_time_s"} for r in rows
        ]
        assert strip(serial.acceptance()) == strip(parallel.acceptance())
        assert serial.n_systems >= 500
        assert serial.systems_per_second > 0
