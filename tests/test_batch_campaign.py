"""Campaign engine: determinism, executor equivalence, export round trips.

The engine's contract (ISSUE 1 acceptance criteria): fixed seeds give
deterministic results, any worker count produces identical metrics, and
``CampaignResult`` survives JSON/CSV export.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    MethodOutcome,
    available_generators,
    available_methods,
    register_generator,
    register_method,
)
from repro.cli import main as cli_main


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        grid={"utilization": (0.3, 0.6, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("reduced",),
        systems_per_cell=3,
        seed=7,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSpec:
    def test_grid_counts(self):
        spec = small_spec(methods=("reduced", "dedicated"))
        assert spec.n_cells() == 9
        assert spec.n_analyses() == 18
        assert spec.sweep_axis == "utilization"

    def test_sweep_axis_sorted_ascending(self):
        spec = small_spec(grid={"utilization": (0.9, 0.3, 0.6)})
        assert spec.grid["utilization"] == (0.3, 0.6, 0.9)

    def test_seed_excludes_sweep_axis(self):
        # Same chain seed at every sweep level: paired samples.
        spec = small_spec()
        assert spec.cell_seed(0, 0) != spec.cell_seed(0, 1)
        assert spec.cell_seed(0, 0) != spec.cell_seed(1, 0)

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError, match="unknown campaign method"):
            Campaign(small_spec(methods=("no_such_method",)))

    def test_unknown_generator_rejected(self):
        with pytest.raises(KeyError, match="unknown generator"):
            Campaign(small_spec(generator="no_such_generator"))

    def test_bad_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="sweep_axis"):
            small_spec(sweep_axis="not_an_axis")

    def test_builtin_registries(self):
        assert "reduced" in available_methods()
        assert "compositional" in available_methods()
        assert "random_system" in available_generators()
        assert "paper" in available_generators()


class TestDeterminism:
    def test_fixed_seed_reproducible(self):
        spec = small_spec()
        a = Campaign(spec).run(workers=1)
        b = Campaign(spec).run(workers=1)
        assert a.metrics() == b.metrics()

    def test_serial_equals_parallel(self):
        spec = small_spec(methods=("reduced", "dedicated"))
        serial = Campaign(spec).run(workers=1)
        parallel = Campaign(spec).run(workers=2)
        assert serial.metrics() == parallel.metrics()
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "mean_time_s"} for r in rows
        ]
        assert strip(serial.acceptance()) == strip(parallel.acceptance())

    def test_chunk_size_does_not_change_results(self):
        spec = small_spec()
        a = Campaign(spec).run(workers=2, chunk_size=1)
        b = Campaign(spec).run(workers=2, chunk_size=5)
        assert a.metrics() == b.metrics()


class TestWarmStart:
    def test_warm_equals_cold_verdicts_and_ratios(self):
        spec_warm = small_spec(systems_per_cell=4)
        spec_cold = small_spec(systems_per_cell=4, warm_start=False)
        warm = Campaign(spec_warm).run(workers=1)
        cold = Campaign(spec_cold).run(workers=1)
        assert len(warm.cells) == len(cold.cells)
        for w, c in zip(warm.cells, cold.cells):
            assert (w.params, w.seed, w.method) == (c.params, c.seed, c.method)
            assert w.schedulable == c.schedulable
            assert w.max_wcrt_ratio == pytest.approx(
                c.max_wcrt_ratio, abs=1e-9
            ) or (w.max_wcrt_ratio == c.max_wcrt_ratio)  # inf == inf
        # The first sweep level is always cold; later levels are warm.
        assert any(c.warm_started for c in warm.cells)
        assert not any(c.warm_started for c in cold.cells)

    def test_warm_start_reported_in_accounting(self):
        result = Campaign(small_spec()).run(workers=1)
        acc = result.accounting()
        assert acc["warm"]["cells"] + acc["cold"]["cells"] == len(result.cells)
        assert acc["warm"]["cells"] > 0

    def test_driver_stats_agree_with_threaded_accounting(self):
        """The process-wide FixedPointStats counters captured per method
        call must agree with the evaluations threaded up through
        ScenarioOutcome -> ReducedResult -> SystemAnalysis."""
        result = Campaign(small_spec()).run(workers=1)
        for cell in result.cells:
            assert cell.extras["fp_evaluations"] == cell.evaluations
            assert cell.extras["fp_solves"] > 0
            assert cell.extras["fp_diverged"] >= 0


class TestExport:
    def test_json_round_trip(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.save_json(tmp_path / "campaign.json")
        loaded = CampaignResult.load_json(path)
        assert loaded.metrics() == result.metrics()
        assert loaded.to_dict() == result.to_dict()
        # The payload really is JSON (inf round trips via allow_nan).
        json.loads(path.read_text())

    def test_cells_csv(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.write_cells_csv(tmp_path / "cells.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 1 + len(result.cells)
        header = rows[0]
        assert "utilization" in header
        assert "schedulable" in header
        assert "evaluations" in header

    def test_acceptance_csv(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        path = result.write_acceptance_csv(tmp_path / "acceptance.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        # one aggregate row per (sweep level, method)
        assert len(rows) == 1 + 3
        assert "ratio" in rows[0]

    def test_format_summary_mentions_accounting(self):
        result = Campaign(small_spec()).run(workers=1)
        text = result.format_summary()
        assert "systems/s" in text
        assert "phase cache" in text


class TestExtensibility:
    def test_custom_generator_and_method(self):
        from repro.gen import RandomSystemSpec, random_system

        def tiny_generator(params, seed):
            return random_system(
                RandomSystemSpec(
                    n_platforms=1,
                    n_transactions=int(params.get("n_transactions", 1)),
                    tasks_per_transaction=(1, 1),
                    utilization=0.2,
                ),
                seed=seed,
            )

        def count_tasks(system, warm_start):
            return MethodOutcome(
                schedulable=True,
                extras={"total_tasks": system.total_tasks()},
            )

        register_generator("test_tiny", tiny_generator)
        register_method("test_count_tasks", count_tasks)
        spec = CampaignSpec(
            grid={"n_transactions": (1, 2)},
            methods=("test_count_tasks",),
            systems_per_cell=2,
            generator="test_tiny",
        )
        result = Campaign(spec).run(workers=1)
        assert len(result.cells) == 4
        for cell in result.cells:
            assert cell.extras["total_tasks"] == cell.params["n_transactions"]


class TestPaperGenerator:
    def test_paper_campaign_single_cell(self):
        spec = CampaignSpec(
            grid={},
            methods=("reduced", "compositional"),
            systems_per_cell=1,
            generator="paper",
        )
        result = Campaign(spec).run(workers=1)
        assert len(result.cells) == 2
        by_method = {c.method: c for c in result.cells}
        # The paper example is schedulable under both the holistic analysis
        # and the per-platform compositional baseline.
        assert by_method["reduced"].schedulable
        assert by_method["compositional"].schedulable
        assert by_method["reduced"].max_wcrt_ratio < 1.0


class TestCli:
    def test_campaign_subcommand(self, tmp_path, capsys):
        json_out = tmp_path / "result.json"
        rc = cli_main([
            "campaign",
            "--grid", "utilization=0.3,0.6",
            "--transactions", "2",
            "--platforms", "2",
            "--tasks", "1,2",
            "--systems", "2",
            "--methods", "reduced",
            "--workers", "1",
            "--json", str(json_out),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "systems/s" in out
        loaded = CampaignResult.load_json(json_out)
        assert len(loaded.cells) == 4

    def test_campaign_grid_parsing_errors(self, capsys):
        rc = cli_main(["campaign", "--grid", "garbage"])
        assert rc == 2


@pytest.mark.slow
class TestCampaignAtScale:
    """The ISSUE 1 acceptance criterion: a >= 500-system sweep whose
    aggregates are identical for 1 and 4 workers."""

    SPEC = CampaignSpec(
        grid={"utilization": tuple(0.3 + 0.06 * k for k in range(10))},
        base={
            "n_platforms": 2,
            "n_transactions": 3,
            "tasks_per_transaction": (1, 3),
        },
        methods=("reduced",),
        systems_per_cell=50,
        seed=1,
    )

    def test_500_system_sweep_parallel_equals_serial(self):
        assert self.SPEC.n_cells() >= 500
        serial = Campaign(self.SPEC).run(workers=1)
        parallel = Campaign(self.SPEC).run(workers=4)
        assert serial.metrics() == parallel.metrics()
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "mean_time_s"} for r in rows
        ]
        assert strip(serial.acceptance()) == strip(parallel.acceptance())
        assert serial.n_systems >= 500
        assert serial.systems_per_second > 0


class TestStableLevels:
    """ISSUE 2 satellite: sweep levels live on a stable decimal grid."""

    def test_linspace_levels_no_float_drift(self):
        from repro.batch import linspace_levels

        levels = linspace_levels(0.30, 0.95, 14)
        assert len(levels) == 14
        assert levels[0] == 0.3 and levels[-1] == 0.95
        # The naive generator produced 0.6000000000000001 at k=6.
        assert 0.6 in levels
        assert all(v == round(v, 10) for v in levels)

    def test_single_level(self):
        from repro.batch import linspace_levels

        assert linspace_levels(0.5, 0.9, 1) == (0.5,)

    def test_spec_snaps_float_grid_values(self):
        drifted = tuple(0.3 + 0.05 * k for k in range(14))
        assert 0.6 not in drifted  # the drift this satellite fixes
        spec = small_spec(grid={"utilization": drifted})
        assert 0.6 in spec.grid["utilization"]
        assert all(
            v == round(v, 10) for v in spec.grid["utilization"]
        )

    def test_integer_axes_untouched(self):
        spec = small_spec(
            grid={"utilization": (0.3, 0.6), "n_transactions": (2, 3)},
        )
        assert spec.grid["n_transactions"] == (2, 3)


class TestChainCosts:
    """ISSUE 5: every run records its per-chain wall-time manifest."""

    def test_costs_cover_every_chain_and_sum_to_cell_time(self):
        spec = small_spec()
        result = Campaign(spec).run(workers=1)
        assert set(result.chain_costs) == {
            c["index"] for c in Campaign(spec).chains()
        }
        assert sum(result.chain_costs.values()) == pytest.approx(
            sum(c.time_s for c in result.cells)
        )
        assert all(v >= 0.0 for v in result.chain_costs.values())

    def test_costs_survive_json_round_trip(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        loaded = CampaignResult.load_json(
            result.save_json(tmp_path / "r.json")
        )
        assert loaded.chain_costs == result.chain_costs
        # Keys are ints again after the round trip (JSON stringifies).
        assert all(isinstance(k, int) for k in loaded.chain_costs)

    def test_pool_run_records_costs_too(self):
        result = Campaign(small_spec(systems_per_cell=4)).run(workers=2)
        assert len(result.chain_costs) == 4

    def test_old_result_without_costs_still_loads(self, tmp_path):
        result = Campaign(small_spec()).run(workers=1)
        data = result.to_dict()
        del data["chain_costs"]  # a pre-ISSUE-5 result file
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        assert CampaignResult.load_json(path).chain_costs == {}


class TestCheckpoint:
    """ISSUE 5: periodic atomic checkpoints make real kills resumable."""

    def test_checkpoint_is_valid_resume_input(self, tmp_path):
        spec = small_spec()
        full = Campaign(spec).run(workers=1)
        ck = tmp_path / "ck.json"
        Campaign(spec).run(workers=1, checkpoint=ck, checkpoint_every=2)
        partial = CampaignResult.load_json(ck)
        assert partial.truncated  # a checkpoint is a truncated view
        assert 0 < len(partial.cells) <= len(full.cells)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert resumed.metrics() == full.metrics()

    def test_checkpoint_write_is_atomic(self, tmp_path):
        ck = tmp_path / "ck.json"
        Campaign(small_spec()).run(
            workers=1, checkpoint=ck, checkpoint_every=1
        )
        assert ck.exists()
        assert not ck.with_name(ck.name + ".tmp").exists()
        CampaignResult.load_json(ck)  # parses cleanly

    def test_checkpoint_during_resume_reports_reused_cells(self, tmp_path):
        spec = small_spec()
        partial = Campaign(spec).run(workers=1, max_cells=4)
        ck = tmp_path / "ck.json"
        Campaign(spec).run(
            workers=1, resume_from=partial, checkpoint=ck, checkpoint_every=2
        )
        # The reused batch is consumed (and may be checkpointed) first;
        # the checkpoint must already carry its reused-cell provenance.
        assert CampaignResult.load_json(ck).reused_cells == 4

    def test_checkpoint_validation(self, tmp_path):
        spec = small_spec()
        with pytest.raises(ValueError, match="checkpoint_every"):
            Campaign(spec).run(workers=1, checkpoint=tmp_path / "c.json")
        with pytest.raises(ValueError, match="collect"):
            Campaign(spec).run(
                workers=1,
                checkpoint=tmp_path / "c.json",
                checkpoint_every=2,
                collect="none",
                stream_csv=tmp_path / "s.csv",
            )

    @pytest.mark.dist
    def test_pool_run_checkpoints_at_chunk_granularity(self, tmp_path):
        spec = small_spec(systems_per_cell=4)
        ck = tmp_path / "ck.json"
        result = Campaign(spec).run(
            workers=2, checkpoint=ck, checkpoint_every=1
        )
        partial = CampaignResult.load_json(ck)
        assert len(partial.cells) <= len(result.cells)
        assert partial.metrics() == result.metrics()[: len(partial.cells)]


class TestResume:
    """ISSUE 2 satellite: --resume skips completed cells and merges."""

    def test_full_resume_reuses_everything(self):
        spec = small_spec()
        full = Campaign(spec).run(workers=1)
        resumed = Campaign(spec).run(workers=1, resume_from=full)
        assert resumed.reused_cells == len(full.cells)
        assert resumed.metrics() == full.metrics()

    def test_partial_resume_reruns_incomplete_chains(self):
        spec = small_spec(systems_per_cell=3)
        full = Campaign(spec).run(workers=1)
        # Drop one chain completely (replicate 2) and keep only the first
        # sweep level of another (replicate 1): the former re-runs from
        # scratch, the latter reuses its completed prefix and re-seeds the
        # warm-start state from the last completed level (see
        # tests/test_campaign_resume_prefix.py for the full matrix).
        partial = CampaignResult(
            spec=full.spec,
            cells=[
                c for c in full.cells
                if c.replicate == 0
                or (c.replicate == 1 and c.params["utilization"] < 0.6)
            ],
            workers=1,
            wall_time_s=full.wall_time_s,
        )
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert resumed.metrics() == full.metrics()
        # The full chain (replicate 0) plus replicate 1's one-level prefix.
        n_levels = len(spec.sweep_values())
        assert resumed.reused_cells == (n_levels + 1) * len(spec.methods)
        # Re-seeding the prefix chain's warm state cost unreported solves.
        assert resumed.reseed_solves > 0

    def test_resume_round_trips_through_json(self, tmp_path):
        spec = small_spec()
        first = Campaign(spec).run(workers=1)
        path = first.save_json(tmp_path / "partial.json")
        loaded = CampaignResult.load_json(path)
        resumed = Campaign(spec).run(workers=1, resume_from=loaded)
        assert resumed.metrics() == first.metrics()
        assert resumed.reused_cells == len(first.cells)

    def test_resume_rejects_mismatched_spec(self):
        spec = small_spec()
        other = small_spec(seed=99)
        done = Campaign(other).run(workers=1)
        with pytest.raises(ValueError, match="seed"):
            Campaign(spec).run(workers=1, resume_from=done)

    def test_cli_resume(self, tmp_path, capsys):
        args = [
            "campaign",
            "--grid", "utilization=0.3,0.6",
            "--transactions", "2",
            "--tasks", "1,2",
            "--systems", "2",
            "--workers", "1",
        ]
        first_json = tmp_path / "first.json"
        assert cli_main(args + ["--json", str(first_json)]) == 0
        capsys.readouterr()
        second_json = tmp_path / "second.json"
        rc = cli_main(
            args + ["--resume", str(first_json), "--json", str(second_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed:" in out
        a = CampaignResult.load_json(first_json)
        b = CampaignResult.load_json(second_json)
        assert a.metrics() == b.metrics()


class TestStreamingCsv:
    """ISSUE 2 satellite: incremental CSV streaming in bounded memory."""

    def test_streamed_rows_match_buffered_export(self, tmp_path):
        import csv as csv_mod

        spec = small_spec()
        streamed_path = tmp_path / "stream.csv"
        result = Campaign(spec).run(workers=1, stream_csv=streamed_path)
        assert result.streamed_cells == len(result.cells)
        buffered_path = result.write_cells_csv(tmp_path / "buffered.csv")
        with streamed_path.open() as fh:
            streamed = list(csv_mod.reader(fh))
        with buffered_path.open() as fh:
            buffered = list(csv_mod.reader(fh))
        assert streamed[0] == buffered[0]  # identical header
        assert sorted(map(tuple, streamed[1:])) == sorted(
            map(tuple, buffered[1:])
        )

    def test_no_collect_bounded_memory(self, tmp_path):
        import csv as csv_mod

        spec = small_spec()
        path = tmp_path / "stream.csv"
        result = Campaign(spec).run(
            workers=1, stream_csv=path, collect=False
        )
        assert result.cells == []
        assert result.streamed_cells == spec.n_analyses()
        with path.open() as fh:
            rows = list(csv_mod.reader(fh))
        assert len(rows) == 1 + spec.n_analyses()

    def test_no_collect_requires_stream(self):
        with pytest.raises(ValueError, match="stream_csv"):
            Campaign(small_spec()).run(workers=1, collect=False)

    def test_parallel_streaming_same_rows(self, tmp_path):
        import csv as csv_mod

        spec = small_spec(systems_per_cell=4)
        a_path = tmp_path / "serial.csv"
        b_path = tmp_path / "parallel.csv"
        Campaign(spec).run(workers=1, stream_csv=a_path)
        Campaign(spec).run(workers=2, stream_csv=b_path)

        def rows_without_timing(path):
            with path.open() as fh:
                rows = list(csv_mod.reader(fh))
            return sorted(tuple(r[:-1]) for r in rows[1:])

        assert rows_without_timing(a_path) == rows_without_timing(b_path)


class TestShmCollection:
    """ISSUE 3 satellite: ``collect="shm"`` must equal ``collect="pickle"``
    cell for cell, including when the ring overflows into the fallback."""

    @pytest.mark.dist
    def test_shm_equals_pickle_two_workers(self, shm_guard):
        spec = small_spec(systems_per_cell=4)
        pickle_r = Campaign(spec).run(workers=2, collect="pickle")
        shm_r = Campaign(spec).run(workers=2, collect="shm")
        assert shm_r.metrics() == pickle_r.metrics()
        # Everything fit the default ring: no pickle fallback.
        assert shm_r.shm_records == len(shm_r.cells)
        assert shm_r.shm_overflow == 0
        # The extras dicts survive the fixed-width JSON tail bit for bit.
        assert [c.extras for c in shm_r.cells] == [
            c.extras for c in pickle_r.cells
        ]
        # And the wall-clock payloads decoded from the ring are sane f64s.
        assert all(c.time_s > 0 for c in shm_r.cells)

    @pytest.mark.dist
    def test_ring_overflow_falls_back_to_pickle(self, shm_guard):
        from repro.batch.campaign import SHM_RECORD_SIZE

        spec = small_spec(systems_per_cell=4)
        reference = Campaign(spec).run(workers=1)
        # Room for exactly two records: everything else must overflow.
        shm_r = Campaign(
            spec
        ).run(workers=2, collect="shm", shm_bytes=2 * SHM_RECORD_SIZE)
        assert shm_r.metrics() == reference.metrics()
        assert 0 < shm_r.shm_records <= 2
        assert shm_r.shm_overflow == len(shm_r.cells) - shm_r.shm_records

    @pytest.mark.dist
    def test_oversized_extras_overflow_per_record(self, shm_guard):
        """A record whose extras exceed the fixed width ships via pickle;
        small records still use the ring."""
        def chatty(system, warm_start):
            return MethodOutcome(
                schedulable=True, extras={"blob": "x" * 4096}
            )

        register_method("test_chatty", chatty)
        spec = small_spec(
            methods=("reduced", "test_chatty"), systems_per_cell=4
        )
        pickle_r = Campaign(spec).run(workers=2, collect="pickle")
        shm_r = Campaign(spec).run(workers=2, collect="shm")
        assert shm_r.metrics() == pickle_r.metrics()
        assert [c.extras for c in shm_r.cells] == [
            c.extras for c in pickle_r.cells
        ]
        n = len(shm_r.cells)
        assert shm_r.shm_records == n // 2      # the 'reduced' cells
        assert shm_r.shm_overflow == n // 2     # the oversized ones

    @pytest.mark.dist
    def test_shm_streaming_same_rows(self, shm_guard, tmp_path):
        import csv as csv_mod

        spec = small_spec(systems_per_cell=4)
        a_path = tmp_path / "pickle.csv"
        b_path = tmp_path / "shm.csv"
        Campaign(spec).run(workers=2, stream_csv=a_path, collect="pickle")
        Campaign(spec).run(workers=2, stream_csv=b_path, collect="shm")

        def rows_without_timing(path):
            with path.open() as fh:
                rows = list(csv_mod.reader(fh))
            return sorted(tuple(r[:-1]) for r in rows[1:])

        assert rows_without_timing(a_path) == rows_without_timing(b_path)

    @pytest.mark.dist
    def test_stream_only_runs_route_through_the_ring(self, shm_guard, tmp_path):
        """ISSUE 4 satellite (ROADMAP open item): ``--stream-csv`` with
        ``collect="none"`` carries rows through the shared-memory ring --
        no pickle round-trip -- and writes the same CSV as the pickle
        transport."""
        import csv as csv_mod

        spec = small_spec(systems_per_cell=4)
        ring_path = tmp_path / "ring.csv"
        pickle_path = tmp_path / "pickle.csv"
        ring_r = Campaign(spec).run(
            workers=2, stream_csv=ring_path, collect="none"
        )
        pickle_r = Campaign(spec).run(
            workers=2, stream_csv=pickle_path, collect="pickle"
        )
        # The stream-only run really used the ring...
        assert ring_r.shm_records == ring_r.streamed_cells > 0
        assert ring_r.shm_overflow == 0
        # ...kept nothing in memory...
        assert ring_r.cells == []
        # ...and streamed the identical rows, in the identical order.
        def rows_without_timing(path):
            with path.open() as fh:
                rows = list(csv_mod.reader(fh))
            return [tuple(r[:-1]) for r in rows]

        assert rows_without_timing(ring_path) == rows_without_timing(pickle_path)

    @pytest.mark.dist
    def test_stream_only_ring_overflow_still_streams_everything(
        self, shm_guard, tmp_path
    ):
        from repro.batch.campaign import SHM_RECORD_SIZE

        spec = small_spec(systems_per_cell=4)
        path = tmp_path / "tiny_ring.csv"
        result = Campaign(spec).run(
            workers=2, stream_csv=path, collect="none",
            shm_bytes=2 * SHM_RECORD_SIZE,
        )
        assert result.streamed_cells == spec.n_analyses()
        assert 0 < result.shm_records <= 2
        assert result.shm_overflow == result.streamed_cells - result.shm_records

    @pytest.mark.dist
    def test_json_unstable_extras_overflow_per_record(self, shm_guard):
        """Extras that would not survive the JSON round trip unchanged
        (e.g. int dict keys, which JSON stringifies) must ship via the
        pickle fallback so shm stays bit-identical to pickle."""
        def int_keyed(system, warm_start):
            return MethodOutcome(schedulable=True, extras={1: "x"})

        register_method("test_int_keyed", int_keyed)
        spec = small_spec(methods=("test_int_keyed",), systems_per_cell=4)
        pickle_r = Campaign(spec).run(workers=2, collect="pickle")
        shm_r = Campaign(spec).run(workers=2, collect="shm")
        assert [c.extras for c in shm_r.cells] == [
            c.extras for c in pickle_r.cells
        ]
        assert shm_r.cells[0].extras == {1: "x"}  # key type preserved
        assert shm_r.shm_records == 0
        assert shm_r.shm_overflow == len(shm_r.cells)

    def test_single_worker_shm_degrades_to_inline(self):
        """workers=1 has no IPC to optimize; collect='shm' still works."""
        spec = small_spec()
        inline = Campaign(spec).run(workers=1, collect="shm")
        reference = Campaign(spec).run(workers=1)
        assert inline.metrics() == reference.metrics()
        assert inline.shm_records == 0

    def test_invalid_collect_rejected(self):
        with pytest.raises(ValueError, match="collect"):
            Campaign(small_spec()).run(workers=1, collect="carrier_pigeon")

    def test_cli_collect_shm(self, tmp_path, capsys):
        json_out = tmp_path / "result.json"
        rc = cli_main([
            "campaign",
            "--grid", "utilization=0.3,0.6",
            "--transactions", "2",
            "--tasks", "1,2",
            "--systems", "2",
            "--workers", "2",
            "--collect", "shm",
            "--json", str(json_out),
        ])
        assert rc == 0
        loaded = CampaignResult.load_json(json_out)
        assert len(loaded.cells) == 4


class TestChainScaling:
    """The sweep chains derive levels by exact utilization scaling."""

    def test_scaled_equals_regenerated(self):
        from repro.gen import RandomSystemSpec, random_system
        from repro.gen.random_transactions import scale_system_utilization

        base_spec = dict(
            n_platforms=2, n_transactions=3, tasks_per_transaction=(1, 3)
        )
        lo = random_system(
            RandomSystemSpec(utilization=0.4, **base_spec), seed=5
        )
        hi = random_system(
            RandomSystemSpec(utilization=0.8, **base_spec), seed=5
        )
        scaled = scale_system_utilization(lo, 0.8 / 0.4)
        assert len(scaled.transactions) == len(hi.transactions)
        for tr_s, tr_h in zip(scaled.transactions, hi.transactions):
            assert tr_s.period == tr_h.period
            for t_s, t_h in zip(tr_s.tasks, tr_h.tasks):
                assert t_s.wcet == pytest.approx(t_h.wcet, rel=1e-12)
                assert t_s.bcet == pytest.approx(t_h.bcet, rel=1e-12)
                assert t_s.priority == t_h.priority
                assert t_s.platform == t_h.platform

    def test_scaling_across_wcet_floor_matches_regeneration(self):
        """Downscaling a demand past the generator's 1e-6 wcet floor must
        keep matching the system regenerated at the target utilization
        (floored wcet, bcet = ratio * wcet)."""
        from repro.gen import RandomSystemSpec, random_system
        from repro.gen.random_transactions import scale_system_utilization

        base_spec = dict(
            n_platforms=2, n_transactions=2, tasks_per_transaction=(1, 2)
        )
        lo = random_system(
            RandomSystemSpec(utilization=1e-4, **base_spec), seed=3
        )
        scaled = scale_system_utilization(lo, 1e-4)  # down to u = 1e-8
        regen = random_system(
            RandomSystemSpec(utilization=1e-12, **base_spec), seed=3
        )
        # u = 1e-12 floors every drawn demand; compare against the scaled
        # system's floored tasks.
        for tr_s, tr_r in zip(scaled.transactions, regen.transactions):
            for t_s, t_r in zip(tr_s.tasks, tr_r.tasks):
                if t_s.wcet == 1e-6:  # the floor engaged
                    assert t_r.wcet == 1e-6
                    assert t_s.bcet == pytest.approx(t_r.bcet, rel=1e-9)
                assert t_s.bcet <= t_s.wcet

    def test_campaign_chain_metrics_deterministic_with_scaling(self):
        # The scaler is exercised by every utilization sweep; two runs of
        # the same spec must still agree cell for cell.
        spec = small_spec()
        a = Campaign(spec).run(workers=1)
        b = Campaign(spec).run(workers=1)
        assert a.metrics() == b.metrics()


class TestHeartbeatAndChains:
    """Worker-side liveness reporting and explicit chain subsets."""

    def test_heartbeat_file_tracks_progress(self, tmp_path):
        import os

        spec = small_spec()
        hb_path = tmp_path / "beat.json"
        result = Campaign(spec).run(
            workers=1, heartbeat=hb_path, heartbeat_interval=0.1
        )
        beat = json.loads(hb_path.read_text())
        # The final (stop-time) beat reports every cell consumed.
        assert beat["cells"] == len(result.cells) == spec.n_analyses()
        assert beat["pid"] == os.getpid()
        assert beat["seq"] >= 1
        assert beat["time"] > 0

    def test_heartbeat_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            Campaign(small_spec()).run(
                workers=1, heartbeat=tmp_path / "b.json", heartbeat_interval=0
            )

    def test_heartbeat_survives_transient_write_failures(
        self, tmp_path, monkeypatch
    ):
        """A disk hiccup (ENOSPC, remount) must skip the beat and retry
        at the next interval -- never kill the beat thread, never
        publish a gap in the sequence numbers."""
        import os as _os
        import time as _time

        from repro.batch import campaign as campaign_mod
        from repro.batch.campaign import _HeartbeatWriter

        hb = _HeartbeatWriter(tmp_path / "beat.json", 0.02)
        hb.start()
        _time.sleep(0.08)  # a few healthy beats land first
        real_replace = _os.replace

        def flaky(src, dst):
            raise OSError("disk went away")

        monkeypatch.setattr(campaign_mod.os, "replace", flaky)
        _time.sleep(0.1)  # every beat in this window fails
        monkeypatch.setattr(campaign_mod.os, "replace", real_replace)
        hb.bump(7)  # recovery: progress published immediately
        _time.sleep(0.08)
        hb.stop()
        assert hb.failed_beats >= 1
        assert hb._thread is not None and not hb._thread.is_alive()
        beat = json.loads((tmp_path / "beat.json").read_text())
        assert beat["cells"] == 7
        # seq counts *published* beats only: failures bump nothing, so
        # the final file carries exactly the writer's landed-beat count.
        assert beat["seq"] == hb._seq

    def test_heartbeat_recreates_vanished_parent_dir(self, tmp_path):
        """An aggressively cleaned work dir is recreated so later beats
        land again instead of failing forever."""
        import shutil
        import time as _time

        from repro.batch.campaign import _HeartbeatWriter

        parent = tmp_path / "wd"
        hb = _HeartbeatWriter(parent / "beat.json", 0.02)
        hb.start()
        _time.sleep(0.06)
        shutil.rmtree(parent)
        _time.sleep(0.06)  # first beat after the rmtree fails, recreates
        hb.bump(3)
        _time.sleep(0.06)
        hb.stop()
        assert hb.failed_beats >= 1
        beat = json.loads((parent / "beat.json").read_text())
        assert beat["cells"] == 3

    def test_heartbeat_unwritable_parent_never_raises(self, tmp_path):
        """A beat path whose parent cannot exist fails every write but
        must never take the campaign (or the thread) down with it."""
        import time as _time

        from repro.batch.campaign import _HeartbeatWriter

        blocker = tmp_path / "flat"
        blocker.write_text("")  # a *file* where the parent dir should be
        hb = _HeartbeatWriter(blocker / "beat.json", 0.02)
        hb.start()  # mkdir fails: counted, not raised
        _time.sleep(0.06)
        hb.bump(2)
        hb.stop()
        assert hb.failed_beats >= 2
        assert hb._seq == 0  # nothing ever landed

    def test_chain_subsets_union_bit_identical(self):
        """--chains is the elastic-split transport: disjoint index subsets
        must union to exactly the full run."""
        from repro.batch import StreamingMerger

        spec = small_spec(systems_per_cell=2)
        full = Campaign(spec).run(workers=1)
        indices = [c["index"] for c in spec.chains()]
        assert len(indices) >= 2
        merger = StreamingMerger(spec.to_dict())
        for subset in (indices[::2], indices[1::2]):
            merger.add(Campaign(spec).run(workers=1, chain_indices=subset))
        merged = merger.finish()
        assert merged.metrics() == full.metrics()

    def test_chains_and_shard_are_mutually_exclusive(self):
        spec = small_spec()
        with pytest.raises(ValueError, match="chain_indices"):
            Campaign(spec).run(
                workers=1, shard=(0, 2), chain_indices=[0]
            )

    def test_unknown_chain_index_rejected(self):
        spec = small_spec()
        with pytest.raises(ValueError, match="unknown chain"):
            Campaign(spec).run(workers=1, chain_indices=[10_000])

    def test_cli_chains_flag(self, tmp_path, capsys):
        spec = small_spec(systems_per_cell=2)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        out_json = tmp_path / "subset.json"
        rc = cli_main([
            "campaign", "--spec", str(spec_path),
            "--chains", "0", "--json", str(out_json),
        ])
        capsys.readouterr()
        assert rc == 0
        subset = CampaignResult.load_json(out_json)
        chain0 = next(c for c in spec.chains() if c["index"] == 0)
        assert len(subset.cells) == len(spec.sweep_values()) * len(
            spec.methods
        )
        assert {(c.seed, c.replicate) for c in subset.cells} == {
            (chain0["seed"], chain0["replicate"])
        }

    def test_cli_chains_flag_rejects_garbage(self, capsys):
        rc = cli_main(["campaign", "--chains", "0,x"])
        assert rc == 2
        assert "--chains" in capsys.readouterr().err
