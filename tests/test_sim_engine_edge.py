"""Edge-case tests for the simulator engine."""

import pytest

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.periodic_server import PeriodicServer
from repro.sim import SimulationConfig, simulate
from repro.sim.supply import ServerSupply


def sys_of(*txns, platforms=None):
    return TransactionSystem(
        transactions=list(txns),
        platforms=platforms or [DedicatedPlatform()],
    )


class TestHorizonEdges:
    def test_job_spanning_horizon_counted_in_flight(self):
        tr = Transaction(period=100.0, tasks=[Task(wcet=50.0, platform=0, priority=1)])
        trace = simulate(sys_of(tr), config=SimulationConfig(horizon=30.0))
        assert trace.in_flight == 1
        assert (0, 0) not in trace.tasks  # never completed

    def test_completion_exactly_at_horizon(self):
        tr = Transaction(period=100.0, tasks=[Task(wcet=10.0, platform=0, priority=1)])
        trace = simulate(sys_of(tr), config=SimulationConfig(horizon=10.0))
        # Completion at t=10 == horizon: the loop breaks before retiring.
        assert trace.tasks.get((0, 0)) is None or trace.tasks[(0, 0)].count <= 1

    def test_default_horizon_scales_with_period(self):
        tr = Transaction(period=7.0, tasks=[Task(wcet=1.0, platform=0, priority=1)])
        trace = simulate(sys_of(tr))
        assert trace.horizon == pytest.approx(350.0)  # 50x max period


class TestStarvation:
    def test_task_starved_by_supply_never_completes(self):
        # Budget 1 per 10 at rate 1; task needs 20 cycles per period 100:
        # it completes eventually (10 periods) but not within 50.
        tr = Transaction(period=1000.0, tasks=[Task(wcet=20.0, platform=0, priority=1)])
        system = TransactionSystem(
            transactions=[tr], platforms=[PeriodicServer(1.0, 10.0)]
        )
        trace = simulate(system, config=SimulationConfig(horizon=50.0, placement="early"))
        assert (0, 0) not in trace.tasks
        assert trace.in_flight == 1

    def test_task_eventually_completes_across_windows(self):
        tr = Transaction(period=1000.0, tasks=[Task(wcet=20.0, platform=0, priority=1)])
        system = TransactionSystem(
            transactions=[tr], platforms=[PeriodicServer(1.0, 10.0)]
        )
        trace = simulate(system, config=SimulationConfig(horizon=400.0, placement="early"))
        st = trace.tasks[(0, 0)]
        assert st.count == 1
        # 20 cycles at 1 per 10 time units: finishes in the 20th window.
        assert st.max_response == pytest.approx(191.0, abs=1.0)


class TestPriorityTies:
    def test_equal_priority_fifo_by_ready_time(self):
        a = Transaction(period=100.0, name="a",
                        tasks=[Task(wcet=5.0, platform=0, priority=1)])
        b = Transaction(period=100.0, name="b",
                        tasks=[Task(wcet=5.0, platform=0, priority=1)])
        system = sys_of(a, b)
        from repro.sim.workload import ReleasePolicy

        trace = simulate(system, config=SimulationConfig(
            horizon=50.0,
            release=ReleasePolicy(mode="phased", phases=[0.0, 1.0]),
        ))
        # a released first -> runs to completion first.
        assert trace.tasks[(0, 0)].max_response == pytest.approx(5.0)
        assert trace.tasks[(1, 0)].max_response == pytest.approx(9.0)

    def test_same_ready_time_breaks_by_uid(self):
        a = Transaction(period=100.0, tasks=[Task(wcet=2.0, platform=0, priority=1)])
        b = Transaction(period=100.0, tasks=[Task(wcet=2.0, platform=0, priority=1)])
        trace = simulate(sys_of(a, b), config=SimulationConfig(horizon=50.0))
        # Deterministic: transaction 0's job was created first.
        assert trace.tasks[(0, 0)].max_response == pytest.approx(2.0)
        assert trace.tasks[(1, 0)].max_response == pytest.approx(4.0)


class TestCustomSupplies:
    def test_explicit_supplies_override_platforms(self):
        tr = Transaction(period=20.0, tasks=[Task(wcet=2.0, platform=0, priority=1)])
        # Platform says fluid 0.5, but we hand the simulator a full-speed
        # early server: response 2.0, not 4.0.
        system = TransactionSystem(
            transactions=[tr], platforms=[LinearSupplyPlatform(0.5)]
        )
        from repro.sim import Simulator

        sim = Simulator(
            system,
            SimulationConfig(horizon=100.0),
            supplies=[ServerSupply(10.0, 10.0, placement="early")],
        )
        trace = sim.run()
        assert trace.tasks[(0, 0)].max_response == pytest.approx(2.0)


class TestChainsAcrossSupplies:
    def test_chain_waits_for_second_platform_window(self):
        tr = Transaction(
            period=50.0,
            tasks=[
                Task(wcet=1.0, platform=0, priority=1),
                Task(wcet=1.0, platform=1, priority=1),
            ],
        )
        system = TransactionSystem(
            transactions=[tr],
            platforms=[DedicatedPlatform(), PeriodicServer(1.0, 10.0)],
        )
        trace = simulate(system, config=SimulationConfig(horizon=200.0, placement="late"))
        # Task 0 done at 1; task 1 waits for the late window [9, 10): ends 10.
        assert trace.tasks[(0, 1)].max_response == pytest.approx(10.0)
