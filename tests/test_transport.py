"""Unit drills for the dispatcher's file-movement layer.

:class:`SharedDirTransport` must stay a faithful zero-copy no-op (the
PR 7 shared-filesystem contract), and :class:`CopyBackTransport` must
carry the full crash-consistency contract on every transfer: per-file
timeout, bounded seeded-backoff retry, SHA-256 digest verification, and
atomic tmp+rename landing -- so a torn, truncated, or bit-flipped copy
never lands, and a failed transfer leaves the destination exactly as it
was.  The injected-fault semantics (first/count windows, per-attempt
counters, host blackholing) are pinned here because the dispatcher-level
fault drills in ``test_dispatch_faults.py`` build on them.
"""

from __future__ import annotations

import pytest

from repro.batch.faults import Fault, FaultPlan, TransportFault
from repro.batch.transport import (
    CopyBackTransport,
    SharedDirTransport,
    TransportError,
)

pytestmark = pytest.mark.transport


@pytest.fixture
def dirs(tmp_path):
    """A dispatcher work dir plus two mock host work dirs."""
    local = tmp_path / "dispatch"
    local.mkdir()
    hosts = {}
    for h in ("alpha", "beta"):
        hosts[h] = tmp_path / "hosts" / h
        hosts[h].mkdir(parents=True)
    return local, hosts


def make(local, hosts, **kwargs):
    kwargs.setdefault("backoff_base", 0.0)  # no sleeps in unit tests
    return CopyBackTransport(local, hosts, **kwargs)


class TestSharedDirTransport:
    def test_worker_paths_are_dispatcher_paths(self, tmp_path):
        t = SharedDirTransport(tmp_path)
        assert t.worker_path("anything", "spec.json") == tmp_path / "spec.json"
        assert t.stage_out("h", "spec.json") is True
        assert t.pull("h", "shard0000.json") is True
        assert t.stats() == {"kind": "shared"}

    def test_remove_unlinks_and_tolerates_absence(self, tmp_path):
        t = SharedDirTransport(tmp_path)
        (tmp_path / "x.json").write_text("{}")
        t.remove("h", "x.json")
        assert not (tmp_path / "x.json").exists()
        t.remove("h", "x.json")  # already gone: no error

    def test_arming_transport_faults_is_a_harness_bug(self, tmp_path):
        t = SharedDirTransport(tmp_path)
        t.arm([])  # empty plan is fine
        with pytest.raises(ValueError, match="CopyBackTransport"):
            t.arm([TransportFault(kind="drop")])


class TestCopyBackRoundTrip:
    def test_stage_out_and_pull(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        (local / "spec.json").write_text('{"seed": 1}')
        assert t.stage_out("alpha", "spec.json")
        assert (hosts["alpha"] / "spec.json").read_text() == '{"seed": 1}'
        assert not (hosts["beta"] / "spec.json").exists()

        (hosts["alpha"] / "shard0000.json").write_text('{"cells": []}')
        assert t.pull("alpha", "shard0000.json")
        assert (local / "shard0000.json").read_text() == '{"cells": []}'
        assert t.stats()["pushes"] == 1
        assert t.stats()["pulls"] == 1

    def test_unchanged_push_is_skipped_changed_push_is_not(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        (local / "spec.json").write_text("v1")
        assert t.stage_out("alpha", "spec.json")
        assert t.stage_out("alpha", "spec.json")  # same bytes: cached
        assert t.stats()["pushes"] == 1
        assert t.stats()["skipped_pushes"] == 1
        # The cache is per (host, name): beta still gets its own push.
        assert t.stage_out("beta", "spec.json")
        assert t.stats()["pushes"] == 2
        # A changed source (fresher resume checkpoint) is re-pushed.
        (local / "spec.json").write_text("v2")
        assert t.stage_out("alpha", "spec.json")
        assert (hosts["alpha"] / "spec.json").read_text() == "v2"
        assert t.stats()["pushes"] == 3

    def test_pull_of_absent_file_is_benign(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        assert t.pull("alpha", "shard0000.hb.json") is True
        assert not (local / "shard0000.hb.json").exists()
        assert t.stats()["failures"] == 0

    def test_remove_clears_both_sides_and_staging_cache(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        (local / "spec.json").write_text("v1")
        t.stage_out("alpha", "spec.json")
        t.remove("alpha", "spec.json")
        assert not (local / "spec.json").exists()
        assert not (hosts["alpha"] / "spec.json").exists()
        # The cache forgot the digest, so the next push really pushes.
        (local / "spec.json").write_text("v1")
        assert t.stage_out("alpha", "spec.json")
        assert t.stats()["pushes"] == 2
        assert t.stats()["skipped_pushes"] == 0

    def test_constructor_validation(self, dirs):
        local, hosts = dirs
        with pytest.raises(ValueError, match="at least one host"):
            CopyBackTransport(local, {})
        with pytest.raises(ValueError, match="collides"):
            CopyBackTransport(local, {"alpha": local})
        with pytest.raises(ValueError, match="timeout"):
            CopyBackTransport(local, hosts, timeout=0)
        with pytest.raises(ValueError, match="retries"):
            CopyBackTransport(local, hosts, retries=-1)

    def test_unknown_host_fails_loudly(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        with pytest.raises(KeyError, match="gamma"):
            t.worker_path("gamma", "spec.json")
        with pytest.raises(ValueError, match="unknown host"):
            t.arm([TransportFault(kind="drop", host="gamma")])


class TestInjectedFaults:
    def test_truncate_is_caught_by_digest_and_healed_by_retry(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        t.arm([TransportFault(kind="truncate", op="pull", name="out.json")])
        (hosts["alpha"] / "out.json").write_text('{"cells": [1, 2, 3]}')
        assert t.pull("alpha", "out.json")  # attempt 2 heals
        assert (local / "out.json").read_text() == '{"cells": [1, 2, 3]}'
        assert t.stats()["retries"] == 1
        assert t.stats()["failures"] == 0

    def test_corrupt_is_caught_by_digest(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        t.arm([TransportFault(kind="corrupt", op="push")])
        (local / "spec.json").write_text("x" * 256)
        assert t.stage_out("alpha", "spec.json")
        assert (hosts["alpha"] / "spec.json").read_text() == "x" * 256
        assert t.stats()["retries"] == 1

    def test_persistent_drop_fails_and_leaves_destination_intact(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        t.arm([TransportFault(kind="drop", op="pull", count=None)])
        (local / "out.json").write_text("previous good copy")
        (hosts["alpha"] / "out.json").write_text("never lands")
        assert t.pull("alpha", "out.json") is False
        assert (local / "out.json").read_text() == "previous good copy"
        assert t.stats()["failures"] == 1
        assert t.stats()["retries"] == t.retries
        assert any("dropped" in e for e in t.events)

    def test_delay_past_timeout_is_abandoned(self, dirs):
        local, hosts = dirs
        t = make(local, hosts, timeout=0.05)
        t.arm(
            [TransportFault(kind="delay", delay_s=5.0, op="pull", count=None)]
        )
        (hosts["alpha"] / "out.json").write_text("slow bytes")
        assert t.pull("alpha", "out.json") is False
        assert not (local / "out.json").exists()
        assert any("timeout" in e for e in t.events)

    def test_first_count_window(self, dirs):
        """``first=2, count=2`` skips attempt 1, fires attempts 2 and 3."""
        local, hosts = dirs
        t = make(local, hosts, retries=0)
        t.arm([TransportFault(kind="drop", op="pull", first=2, count=2)])
        (hosts["alpha"] / "out.json").write_text("payload")
        assert t.pull("alpha", "out.json") is True  # attempt 1: clean
        assert t.pull("alpha", "out.json") is False  # attempt 2: dropped
        assert t.pull("alpha", "out.json") is False  # attempt 3: dropped
        assert t.pull("alpha", "out.json") is True  # window passed

    def test_blackhole_poisons_one_host_only(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        t.arm([TransportFault(kind="blackhole", host="beta")])
        (local / "spec.json").write_text("spec")
        (hosts["beta"] / "out.json").write_text("unreachable")
        assert t.stage_out("beta", "spec.json") is False
        assert "beta" in t.blackholed
        # Every later transfer touching beta fails fast, no retries added.
        retries_after_first = t.stats()["retries"]
        assert t.pull("beta", "out.json") is False
        assert t.stats()["retries"] == retries_after_first
        # alpha is a separate failure domain and keeps working.
        assert t.stage_out("alpha", "spec.json") is True
        assert t.stats()["blackholed"] == ["beta"]

    def test_transfer_once_raises_transport_error(self, dirs):
        local, hosts = dirs
        t = make(local, hosts)
        t.arm([TransportFault(kind="drop")])
        (local / "spec.json").write_text("spec")
        with pytest.raises(TransportError, match="dropped"):
            t._transfer_once(
                "alpha", "push", "spec.json",
                local / "spec.json", hosts["alpha"] / "spec.json",
            )


class TestRetryBackoff:
    def test_backoff_is_deterministic_and_bounded(self, dirs):
        local, hosts = dirs
        a = CopyBackTransport(
            local, hosts, backoff_base=0.5, backoff_max=2.0, seed=7
        )
        b = CopyBackTransport(
            local, hosts, backoff_base=0.5, backoff_max=2.0, seed=7
        )
        delays_a = [a._backoff("alpha", "x", k) for k in (2, 3, 4, 9)]
        delays_b = [b._backoff("alpha", "x", k) for k in (2, 3, 4, 9)]
        assert delays_a == delays_b  # seeded: a drill replays exactly
        assert all(0.0 < d <= 2.0 for d in delays_a)
        assert a._backoff("alpha", "x", 9) == 2.0  # capped
        # Disabled by default in these tests: zero delay.
        off = make(local, hosts)
        assert off._backoff("alpha", "x", 3) == 0.0


class TestTransportFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown transport fault"):
            TransportFault(kind="explode")
        with pytest.raises(ValueError, match="op"):
            TransportFault(kind="drop", op="sideways")
        with pytest.raises(ValueError, match="1-based"):
            TransportFault(kind="drop", first=0)
        with pytest.raises(ValueError, match="count"):
            TransportFault(kind="drop", count=0)
        with pytest.raises(ValueError, match="delay_s"):
            TransportFault(kind="delay", delay_s=-1.0)

    def test_matches_scopes_host_op_and_name_glob(self):
        f = TransportFault(
            kind="drop", host="beta", op="pull", name="*.hb.json"
        )
        assert f.matches("beta", "pull", "shard0000.hb.json")
        assert not f.matches("alpha", "pull", "shard0000.hb.json")
        assert not f.matches("beta", "push", "shard0000.hb.json")
        assert not f.matches("beta", "pull", "shard0000.json")
        wide = TransportFault(kind="blackhole")
        assert wide.matches("anyone", "push", "anything")

    def test_fault_plan_splits_worker_and_transport_entries(self):
        plan = FaultPlan([
            Fault(shard=0, kind="kill", at_cell=1),
            TransportFault(kind="drop", host="beta"),
            {"kind": "blackhole", "host": "alpha"},  # dict, by kind
            {"shard": 1, "kind": "exit"},
        ])
        assert [f.kind for f in plan.faults] == ["kill", "exit"]
        assert [f.kind for f in plan.for_transport()] == [
            "drop", "blackhole",
        ]
        # for_transport returns a copy, not the live list.
        plan.for_transport().clear()
        assert len(plan.transport_faults) == 2
        with pytest.raises(TypeError, match="FaultPlan entries"):
            FaultPlan([object()])
