"""Unit tests for concrete supply processes."""

import numpy as np
import pytest

from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.partition import StaticPartitionPlatform
from repro.platforms.periodic_server import PeriodicServer
from repro.sim.supply import (
    AlwaysOnSupply,
    FluidSupply,
    PartitionSupply,
    ServerSupply,
    supply_for_platform,
)


def delivered(supply, a, b, steps=4000):
    """Numerically integrate the supply rate over [a, b)."""
    ts = np.linspace(a, b, steps, endpoint=False)
    dt = (b - a) / steps
    return sum(supply.rate_at(float(t)) for t in ts) * dt


class TestAlwaysOn:
    def test_constant_rate(self):
        s = AlwaysOnSupply(speed=0.5)
        assert s.rate_at(0.0) == 0.5
        assert s.rate_at(1000.0) == 0.5
        assert s.next_change(3.0) == float("inf")

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            AlwaysOnSupply(0.0)


class TestServerSupply:
    def test_early_placement_window(self):
        s = ServerSupply(2.0, 5.0, placement="early")
        assert s.rate_at(0.5) == 1.0
        assert s.rate_at(2.5) == 0.0
        assert s.rate_at(5.5) == 1.0

    def test_late_placement_window(self):
        s = ServerSupply(2.0, 5.0, placement="late")
        assert s.rate_at(0.5) == 0.0
        assert s.rate_at(3.5) == 1.0
        assert s.rate_at(4.9) == 1.0

    def test_next_change_progresses(self):
        s = ServerSupply(2.0, 5.0, placement="early")
        t = 0.0
        seen = []
        for _ in range(6):
            t = s.next_change(t)
            seen.append(t)
        assert seen == sorted(seen)
        assert seen[0] == pytest.approx(2.0)
        assert seen[1] == pytest.approx(5.0)

    def test_random_placement_deterministic_per_rng(self):
        a = ServerSupply(2.0, 5.0, placement="random", rng=np.random.default_rng(5))
        b = ServerSupply(2.0, 5.0, placement="random", rng=np.random.default_rng(5))
        for t in np.linspace(0, 30, 100):
            assert a.rate_at(float(t)) == b.rate_at(float(t))

    @pytest.mark.parametrize("placement", ["early", "late", "random"])
    def test_budget_per_period_respected(self, placement):
        s = ServerSupply(2.0, 5.0, placement=placement, rng=np.random.default_rng(1))
        for k in range(5):
            got = delivered(s, k * 5.0, (k + 1) * 5.0)
            assert got == pytest.approx(2.0, abs=0.02)

    @pytest.mark.parametrize("placement", ["early", "late", "random"])
    def test_supply_within_platform_envelopes(self, placement):
        """Any placement yields cycles within [zmin, zmax] of the platform."""
        platform = PeriodicServer(2.0, 5.0)
        s = ServerSupply(2.0, 5.0, placement=placement, rng=np.random.default_rng(2))
        for t0 in (0.0, 1.3, 4.0, 7.7):
            for t in (1.0, 3.0, 6.0, 11.0):
                got = delivered(s, t0, t0 + t)
                assert got >= platform.zmin(t) - 0.05
                assert got <= platform.zmax(t) + 0.05

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ServerSupply(6.0, 5.0)
        with pytest.raises(ValueError):
            ServerSupply(1.0, 5.0, placement="sideways")


class TestPartitionSupply:
    def test_rate_pattern(self):
        s = PartitionSupply([(1.0, 2.0)], cycle=5.0)
        assert s.rate_at(0.5) == 0.0
        assert s.rate_at(1.5) == 1.0
        assert s.rate_at(6.5) == 1.0  # next cycle

    def test_next_change(self):
        s = PartitionSupply([(1.0, 2.0)], cycle=5.0)
        assert s.next_change(0.0) == pytest.approx(1.0)
        assert s.next_change(1.5) == pytest.approx(3.0)
        assert s.next_change(3.5) == pytest.approx(6.0)


class TestFactory:
    def test_periodic_server_mapping(self):
        sup = supply_for_platform(PeriodicServer(2.0, 5.0))
        assert isinstance(sup, ServerSupply)
        assert sup.budget == 2.0

    def test_partition_mapping(self):
        platform = StaticPartitionPlatform([(0.0, 1.0)], cycle=4.0)
        sup = supply_for_platform(platform)
        assert isinstance(sup, PartitionSupply)

    def test_dedicated_mapping(self):
        sup = supply_for_platform(DedicatedPlatform())
        assert isinstance(sup, AlwaysOnSupply)
        assert sup.speed == 1.0

    def test_linear_with_delay_synthesizes_server(self):
        platform = LinearSupplyPlatform(0.4, 1.0, 1.0)
        sup = supply_for_platform(platform)
        assert isinstance(sup, ServerSupply)
        # P = delta / (2 (1 - alpha)) = 1 / 1.2; Q = 0.4 P.
        assert sup.period == pytest.approx(1.0 / 1.2)
        assert sup.budget / sup.period == pytest.approx(0.4)

    def test_linear_without_delay_is_fluid(self):
        sup = supply_for_platform(LinearSupplyPlatform(0.3))
        assert isinstance(sup, FluidSupply)
        assert sup.speed == 0.3

    def test_synthesized_server_respects_platform_zmin(self):
        """The synthesized server supplies at least the linear zmin."""
        platform = LinearSupplyPlatform(0.4, 1.0, 1.0)
        sup = supply_for_platform(platform, placement="late")
        # worst placement, many windows
        for t0 in (0.0, 0.4, 1.1):
            for t in (0.5, 1.0, 2.0, 5.0):
                got = delivered(sup, t0, t0 + t, steps=3000)
                assert got >= platform.zmin(t) - 0.05
