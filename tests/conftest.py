"""Shared fixtures for the test suite."""

from __future__ import annotations

import functools

import pytest

from repro.gen import RandomSystemSpec, random_system
from repro.paper import sensor_fusion_system


@functools.lru_cache(maxsize=1)
def _shared_memory_usable() -> bool:
    """Whether multiprocessing.shared_memory actually works on this runner.

    Constrained runners (no /dev/shm, seccomp-filtered shm_open) can import
    the module yet fail to allocate; probe with a real segment.
    """
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        seg.close()
        seg.unlink()
        return True
    except Exception:
        return False


@pytest.fixture
def shm_guard() -> None:
    """Skip (not fail) `dist`-marked tests that need real shared memory."""
    if not _shared_memory_usable():
        pytest.skip(
            "multiprocessing.shared_memory is unusable on this runner"
        )


@pytest.fixture
def paper_system():
    """The paper's sensor-fusion system (Tables 1-2)."""
    return sensor_fusion_system()


@pytest.fixture(params=[1, 2, 3, 5, 8])
def small_random_system(request):
    """A parade of small random systems at moderate utilization."""
    spec = RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=0.35,
    )
    return random_system(spec, seed=request.param)
