"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.gen import RandomSystemSpec, random_system
from repro.paper import sensor_fusion_system


@pytest.fixture
def paper_system():
    """The paper's sensor-fusion system (Tables 1-2)."""
    return sensor_fusion_system()


@pytest.fixture(params=[1, 2, 3, 5, 8])
def small_random_system(request):
    """A parade of small random systems at moderate utilization."""
    spec = RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=0.35,
    )
    return random_system(spec, seed=request.param)
