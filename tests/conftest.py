"""Shared fixtures for the test suite."""

from __future__ import annotations

import functools

import pytest

from repro.paper import sensor_fusion_system

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:
    _HAVE_NUMPY = False

#: Test modules that import (directly or through repro.gen/sim/batch) the
#: NumPy-dependent subsystems.  The no-NumPy CI leg runs the remainder --
#: the analysis core on its scalar-kernel fallback -- so a broken scalar
#: path can no longer hide behind the vector kernel.
_NUMPY_TEST_FILES = [
    "test_analysis_gauss_seidel.py",
    "test_analysis_properties.py",
    "test_analysis_report.py",
    "test_analysis_sensitivity.py",
    "test_batch_campaign.py",
    "test_campaign_resume_prefix.py",
    "test_campaign_sharding.py",
    "test_cli.py",
    "test_differential_sim_vs_analysis.py",
    "test_dispatch.py",
    "test_dispatch_faults.py",
    "test_examples_run.py",
    "test_exactness.py",
    "test_gen.py",
    "test_gen_presets.py",
    "test_integration.py",
    "test_io_components.py",
    "test_io_spec.py",
    "test_kernel_equivalence.py",
    "test_perf_smoke.py",
    "test_platform_algebra.py",
    "test_platform_hierarchy.py",
    "test_platform_periodic_server.py",
    "test_properties_deep.py",
    "test_result_store.py",
    "test_serve.py",
    "test_sim_engine.py",
    "test_sim_engine_edge.py",
    "test_sim_execution_and_gantt.py",
    "test_sim_physical.py",
    "test_sim_physical_properties.py",
    "test_sim_quantiles.py",
    "test_sim_supply.py",
    "test_sim_validate.py",
    "test_transport.py",
    "test_verdict_parity.py",
    "test_viz.py",
    "test_warm_start.py",
]

collect_ignore = [] if _HAVE_NUMPY else list(_NUMPY_TEST_FILES)


@functools.lru_cache(maxsize=1)
def _shared_memory_usable() -> bool:
    """Whether multiprocessing.shared_memory actually works on this runner.

    Constrained runners (no /dev/shm, seccomp-filtered shm_open) can import
    the module yet fail to allocate; probe with a real segment.
    """
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        seg.close()
        seg.unlink()
        return True
    except Exception:
        return False


@pytest.fixture
def shm_guard() -> None:
    """Skip (not fail) `dist`-marked tests that need real shared memory."""
    if not _shared_memory_usable():
        pytest.skip(
            "multiprocessing.shared_memory is unusable on this runner"
        )


@pytest.fixture
def paper_system():
    """The paper's sensor-fusion system (Tables 1-2)."""
    return sensor_fusion_system()


@pytest.fixture(params=[1, 2, 3, 5, 8])
def small_random_system(request):
    """A parade of small random systems at moderate utilization."""
    gen = pytest.importorskip(
        "repro.gen", reason="random-system generation needs NumPy"
    )
    spec = gen.RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=0.35,
    )
    return gen.random_system(spec, seed=request.param)
