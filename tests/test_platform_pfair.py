"""Unit tests for the p-fair platform."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms.pfair import PFairPlatform


class TestConstruction:
    def test_triple(self):
        p = PFairPlatform(0.25, quantum=1.0)
        assert p.rate == 0.25
        assert p.delay == pytest.approx(4.0)  # q/w
        assert p.burstiness == 1.0

    def test_rejects_weight_above_one(self):
        with pytest.raises(ValueError):
            PFairPlatform(1.5)

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            PFairPlatform(0.0)

    def test_rejects_zero_quantum(self):
        with pytest.raises(ValueError):
            PFairPlatform(0.5, quantum=0.0)


class TestSupply:
    def test_zmin_lag_bound(self):
        p = PFairPlatform(0.5, quantum=1.0)
        assert p.zmin(1.0) == 0.0  # 0.5 - 1 < 0
        assert p.zmin(4.0) == pytest.approx(1.0)

    def test_zmax_capped_by_wall_clock(self):
        p = PFairPlatform(0.5, quantum=1.0)
        assert p.zmax(1.0) == 1.0  # min(t, wt + q) = min(1, 1.5)
        assert p.zmax(4.0) == pytest.approx(3.0)

    def test_smaller_delay_than_equal_bandwidth_server(self):
        """The paper's point about pfair: same rate, very different shape."""
        from repro.platforms.periodic_server import PeriodicServer

        pf = PFairPlatform(0.4, quantum=1.0)
        ps = PeriodicServer(4.0, 10.0)  # same rate 0.4
        assert pf.rate == pytest.approx(ps.rate)
        assert pf.delay < ps.delay

    @given(
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.1, max_value=4.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_envelopes_and_sandwich(self, w, q, t):
        p = PFairPlatform(w, quantum=q)
        assert p.zmin(t) <= p.zmax(t) + 1e-12
        assert p.zmin(t) >= p.linear_lower(t) - 1e-9
        assert p.zmax(t) <= p.linear_upper(t) + 1e-9
