"""Property tests for the warm-start fixed-point path (ISSUE 1).

Soundness claim under test: for a monotone non-decreasing map, iterating
from any point at or below the least fixed point converges to the *same*
least fixed point -- so warm-starting from the converged state of a nearby
problem (the previous cell of an ascending sweep) changes nothing but the
iteration count.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.gen import RandomSystemSpec, random_system
from repro.util.fixedpoint import (
    FixedPointDiverged,
    fixed_point_stats,
    iterate_fixed_point,
    iterate_monotone,
)
from repro.util.math import EPS


class TestWarmStartScalar:
    @given(
        a=st.floats(min_value=0.0, max_value=100.0),
        b=st.floats(min_value=0.0, max_value=0.9),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_affine_warm_equals_cold(self, a, b, frac):
        """f(x) = a + b*x with b < 1: warm start from any point below the
        fixed point a/(1-b) reaches the same fixed point within EPS."""
        func = lambda x: a + b * x
        cold = iterate_fixed_point(func, 0.0, tol=1e-12)
        warm_point = frac * cold.value
        warm = iterate_fixed_point(func, 0.0, tol=1e-12, warm_start=warm_point)
        assert warm.value == pytest.approx(cold.value, abs=max(EPS, 1e-9))
        assert warm.iterations <= cold.iterations

    @given(
        step=st.floats(min_value=0.5, max_value=5.0),
        period=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_rta_ceiling_warm_equals_cold(self, step, period):
        """An RTA-style staircase map: warm start preserves the least
        fixed point exactly (integer-valued staircase)."""
        func = lambda w: step + math.ceil(w / period)
        try:
            cold = iterate_fixed_point(func, 0.0, bound=1e6)
        except FixedPointDiverged:
            return  # no fixed point below the bound: nothing to compare
        for frac in (0.0, 0.5, 1.0):
            warm = iterate_fixed_point(
                func, 0.0, bound=1e6, warm_start=frac * cold.value
            )
            assert warm.value == cold.value

    def test_warm_start_below_start_is_ignored(self):
        func = lambda x: 0.5 * x + 4.0
        cold = iterate_fixed_point(func, 3.0)
        warm = iterate_fixed_point(func, 3.0, warm_start=1.0)
        assert warm.value == cold.value
        assert warm.iterations == cold.iterations

    def test_warm_start_counted_in_stats(self):
        before = fixed_point_stats()
        iterate_fixed_point(lambda x: 0.5 * x + 1.0, 0.0, warm_start=1.5)
        delta = fixed_point_stats().delta(before)
        assert delta.warm_started == 1
        assert delta.solves == 1
        assert delta.evaluations >= 1


class TestMonotoneGuard:
    def test_rejects_non_monotone_map(self):
        # Decreasing map: the guard must fire, warm start or not.
        with pytest.raises(AssertionError, match="not monotone"):
            iterate_monotone(lambda x: 10.0 - x, 0.0)

    def test_rejects_non_monotone_map_with_warm_start(self):
        with pytest.raises(AssertionError, match="not monotone"):
            iterate_monotone(lambda x: 10.0 - x, 0.0, warm_start=2.0)

    def test_warm_start_above_fixed_point_detected(self):
        # Starting above the least fixed point makes the first step
        # decrease; the monotone guard treats that as misuse and raises.
        with pytest.raises(AssertionError, match="not monotone"):
            iterate_monotone(lambda x: 0.5 * x + 1.0, 0.0, warm_start=100.0)

    def test_accepts_monotone_map_warm(self):
        cold = iterate_monotone(lambda x: 0.5 * x + 1.0, 0.0, tol=1e-12)
        warm = iterate_monotone(
            lambda x: 0.5 * x + 1.0, 0.0, tol=1e-12, warm_start=1.0
        )
        assert warm.value == pytest.approx(cold.value, abs=1e-9)


class TestHolisticWarmStart:
    """The engine-level property: along an ascending utilization sweep with
    a shared seed (UUniFast scales linearly in total utilization, so wcets
    grow monotonically), the previous level's converged jitters warm-start
    the next level to the *same* fixed point."""

    LEVELS = (0.25, 0.4, 0.55, 0.7, 0.85)

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_sweep_warm_equals_cold(self, seed):
        base = dict(
            n_platforms=2, n_transactions=3, tasks_per_transaction=(1, 3)
        )
        warm_jitters = None
        for util in self.LEVELS:
            system = random_system(
                RandomSystemSpec(utilization=util, **base), seed=seed
            )
            cold = analyze(system)
            warm = analyze(system, warm_start=warm_jitters)
            assert warm.schedulable == cold.schedulable
            for key in cold.tasks:
                c, w = cold.tasks[key].wcrt, warm.tasks[key].wcrt
                if math.isinf(c):
                    assert math.isinf(w)
                else:
                    assert w == pytest.approx(c, abs=max(EPS, 1e-9)), (
                        f"seed={seed} util={util} task={key}"
                    )
            warm_jitters = warm.final_jitters() if warm.converged else None

    def test_warm_start_flag_surfaces(self):
        system = random_system(RandomSystemSpec(utilization=0.5), seed=2)
        cold = analyze(system)
        assert not cold.warm_started
        warm = analyze(system, warm_start=cold.final_jitters())
        # A system with at least one non-first task has positive jitter
        # at the fixed point; if all jitters were zero, no warm start.
        has_jitter = any(v > 0 for v in cold.final_jitters().values())
        assert warm.warm_started == has_jitter
        if has_jitter:
            assert warm.outer_iterations <= cold.outer_iterations
