"""Unit tests for the fixed-point iteration drivers."""

import pytest

from repro.util.fixedpoint import (
    FixedPointDiverged,
    iterate_fixed_point,
    iterate_monotone,
)


class TestIterateFixedPoint:
    def test_constant_map(self):
        res = iterate_fixed_point(lambda x: 5.0, 0.0)
        assert res.value == 5.0
        assert res.iterations >= 1

    def test_identity_converges_immediately(self):
        res = iterate_fixed_point(lambda x: x, 7.0)
        assert res.value == 7.0
        assert res.iterations == 1

    def test_rta_style_recurrence(self):
        # w = 1 + ceil(w/5) * 2 has least fixed point 5:
        # w=1 -> 3 -> 3? ceil(3/5)=1 -> 3; fixed point 3.
        import math

        res = iterate_fixed_point(lambda w: 1 + math.ceil(w / 5) * 2, 0.0)
        assert res.value == 3.0

    def test_divergence_by_bound(self):
        with pytest.raises(FixedPointDiverged) as exc:
            iterate_fixed_point(lambda x: x + 1.0, 0.0, bound=10.0)
        assert exc.value.last_value > 10.0
        assert exc.value.iterations > 0

    def test_divergence_by_iteration_cap(self):
        with pytest.raises(FixedPointDiverged):
            iterate_fixed_point(lambda x: x + 1e-3, 0.0, max_iterations=10)

    def test_tolerance_controls_convergence(self):
        # Geometric approach to 1: with a loose tolerance it stops early.
        res = iterate_fixed_point(lambda x: 0.5 * x + 0.5, 0.0, tol=0.25)
        assert res.value < 1.0
        res2 = iterate_fixed_point(lambda x: 0.5 * x + 0.5, 0.0, tol=1e-12)
        assert res2.value == pytest.approx(1.0, abs=1e-10)

    def test_float_conversion(self):
        res = iterate_fixed_point(lambda x: 2.0, 0.0)
        assert float(res) == 2.0


class TestIterateMonotone:
    def test_accepts_monotone_map(self):
        res = iterate_monotone(lambda x: min(x + 1.0, 4.0), 0.0)
        assert res.value == 4.0

    def test_rejects_decreasing_map(self):
        with pytest.raises(AssertionError, match="not monotone"):
            iterate_monotone(lambda x: -x - 1.0, 0.0)

    def test_divergence_by_bound(self):
        with pytest.raises(FixedPointDiverged):
            iterate_monotone(lambda x: x + 2.0, 0.0, bound=5.0)

    def test_divergence_by_cap(self):
        with pytest.raises(FixedPointDiverged):
            iterate_monotone(lambda x: x + 1e-4, 0.0, max_iterations=5)
