"""Tests for the global scheduler (servers on one physical CPU)."""

import pytest

from repro.opt import server_for_triple
from repro.paper import sensor_fusion_system
from repro.platforms.periodic_server import PeriodicServer
from repro.sim import SimulationConfig, Simulator, schedule_servers
from repro.sim.physical import WindowSupply


class TestWindowSupply:
    def test_rates_and_changes(self):
        w = WindowSupply([(1.0, 2.0), (4.0, 5.0)])
        assert w.rate_at(0.5) == 0.0
        assert w.rate_at(1.5) == 1.0
        assert w.next_change(0.0) == 1.0
        assert w.next_change(1.5) == 2.0
        assert w.next_change(5.0) == float("inf")

    def test_adjacent_windows_merged(self):
        w = WindowSupply([(0.0, 1.0), (1.0, 2.0)])
        assert w.windows == [(0.0, 2.0)]

    def test_delivered(self):
        w = WindowSupply([(1.0, 3.0)])
        assert w.delivered(0.0, 10.0) == pytest.approx(2.0)
        assert w.delivered(2.0, 2.5) == pytest.approx(0.5)


class TestScheduleServers:
    def test_single_server_runs_at_period_starts(self):
        res = schedule_servers([PeriodicServer(2.0, 5.0)], horizon=20.0)
        assert res.feasible
        sup = res.supplies[0]
        assert sup.delivered(0.0, 5.0) == pytest.approx(2.0)
        assert sup.delivered(5.0, 10.0) == pytest.approx(2.0)

    def test_overutilization_rejected(self):
        with pytest.raises(ValueError, match="utilization"):
            schedule_servers(
                [PeriodicServer(3.0, 5.0), PeriodicServer(3.0, 5.0)],
                horizon=10.0,
            )

    def test_edf_full_utilization_feasible(self):
        servers = [
            PeriodicServer(2.0, 5.0),
            PeriodicServer(2.0, 5.0),
            PeriodicServer(2.0, 10.0),
        ]  # total utilization exactly 1.0
        res = schedule_servers(servers, horizon=100.0, policy="edf")
        assert res.feasible
        assert res.idle_fraction == pytest.approx(0.0, abs=1e-6)
        # Every server gets its full budget every period.
        for srv, sup in zip(servers, res.supplies):
            k = 0
            while (k + 1) * srv.period <= 100.0:
                got = sup.delivered(k * srv.period, (k + 1) * srv.period)
                assert got == pytest.approx(srv.budget, abs=1e-6)
                k += 1

    def test_fp_low_priority_can_be_late(self):
        # Two servers each needing half the CPU; under FP the long-period
        # one may slip past its first deadline at full utilization --
        # detected, not silently accepted.
        servers = [PeriodicServer(4.0, 8.0), PeriodicServer(10.0, 20.0)]
        res = schedule_servers(servers, horizon=80.0, policy="fp")
        # RM priorities: server 0 higher. Server 1's budget of 10 gets the
        # gaps: [4,8),[12,16)... 10 units need 20 time units: finishes at
        # exactly t=20 -> feasible boundary case.
        assert res.worst_lateness <= 1e-6

    def test_windows_never_overlap_across_servers(self):
        servers = [
            PeriodicServer(1.0, 4.0),
            PeriodicServer(2.0, 6.0),
            PeriodicServer(1.0, 12.0),
        ]
        res = schedule_servers(servers, horizon=48.0)
        events = []
        for sup in res.supplies:
            events.extend(sup.windows)
        events.sort()
        for (s0, e0), (s1, _) in zip(events, events[1:]):
            assert e0 <= s1 + 1e-9, "two servers ran simultaneously"

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            schedule_servers([PeriodicServer(1.0, 4.0)], horizon=8.0, policy="cfs")

    def test_priority_length_checked(self):
        with pytest.raises(ValueError, match="one priority per server"):
            schedule_servers(
                [PeriodicServer(1.0, 4.0)], horizon=8.0, policy="fp",
                priorities=[1, 2],
            )


class TestTwoLevelDeployment:
    """The paper example deployed on ONE physical CPU via global EDF."""

    def test_paper_example_end_to_end(self):
        system = sensor_fusion_system()
        horizon = 2000.0
        servers = [
            server_for_triple(p.rate, p.delay, name=f"srv{m}")
            for m, p in enumerate(system.platforms)
        ]
        # Total utilization = 0.4 + 0.4 + 0.2 = 1.0: EDF exactly fits.
        res = schedule_servers(servers, horizon=horizon + 100.0, policy="edf")
        assert res.feasible

        from repro.analysis import AnalysisConfig, analyze

        sim = Simulator(
            system,
            SimulationConfig(horizon=horizon),
            supplies=res.supplies,
        )
        trace = sim.run()
        bounds = analyze(system, config=AnalysisConfig(best_case="sound"))
        for key, st in trace.tasks.items():
            assert st.max_response <= bounds.tasks[key].wcrt + 1e-6, key
        assert trace.total_misses() == 0

    def test_supply_budget_per_period_respected(self):
        system = sensor_fusion_system()
        servers = [
            server_for_triple(p.rate, p.delay) for p in system.platforms
        ]
        res = schedule_servers(servers, horizon=200.0, policy="edf")
        for srv, sup in zip(servers, res.supplies):
            k = 0
            while (k + 1) * srv.period <= 200.0:
                got = sup.delivered(k * srv.period, (k + 1) * srv.period)
                assert got == pytest.approx(srv.budget, abs=1e-6)
                k += 1
