"""Chain-prefix resume: killed campaigns restart bit-identically.

A campaign killed mid-chain (simulated deterministically with
``max_cells``) leaves partially completed warm-start chains.  Resuming
must (a) reuse every fully-completed sweep *prefix*, (b) re-seed the
warm-start jitter vector by re-solving only the last completed level
(the converged jitters are the least fixed point, hence independent of
the starting vector), and (c) produce results -- including the
per-cell ``fp_task_solves``/``fp_task_skips`` accounting -- equal to a
from-scratch run.  Also covers the spec-mismatch rejection paths.
"""

from __future__ import annotations

import pytest

from repro.batch import Campaign, CampaignResult, CampaignSpec
from repro.cli import main as cli_main


def make_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        grid={"utilization": (0.3, 0.5, 0.7, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 3),
        },
        methods=("gauss_seidel",),
        systems_per_cell=3,
        seed=23,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def cells_with_extras(result: CampaignResult) -> list[tuple]:
    """metrics() plus the per-cell extras (fp_task_solves and friends)."""
    return [
        m + (tuple(sorted(c.extras.items())),)
        for m, c in zip(result.metrics(), result.cells)
    ]


class TestMaxCells:
    """The deterministic mid-chain kill switch."""

    def test_truncates_and_flags(self):
        spec = make_spec()
        partial = Campaign(spec).run(workers=1, max_cells=5)
        assert partial.truncated
        assert len(partial.cells) == 5
        full = Campaign(spec).run(workers=1)
        assert not full.truncated
        # The partial run is a strict prefix of the canonical cell order.
        assert partial.metrics() == full.metrics()[:5]

    def test_zero_budget(self):
        partial = Campaign(make_spec()).run(workers=1, max_cells=0)
        assert partial.cells == [] and partial.truncated

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_cells"):
            Campaign(make_spec()).run(workers=1, max_cells=-1)

    def test_no_op_when_budget_covers_run(self):
        spec = make_spec()
        result = Campaign(spec).run(workers=1, max_cells=10**9)
        assert not result.truncated
        assert len(result.cells) == spec.n_analyses()


class TestPrefixResume:
    """Killed at every possible point, resume == from-scratch."""

    @pytest.mark.parametrize("cut", [1, 2, 3, 5, 7, 11])
    def test_resume_bit_identical_at_any_cut(self, cut):
        spec = make_spec()
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=cut)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert not resumed.truncated
        assert resumed.metrics() == full.metrics()
        # ... including the dirty-set / fixed-point solve accounting the
        # gauss_seidel method threads through the extras.
        assert cells_with_extras(resumed) == cells_with_extras(full)
        assert resumed.reused_cells == cut

    def test_mid_level_kill_reruns_that_level_whole(self):
        # Two methods per level; an odd cut strands one method mid-level.
        spec = make_spec(methods=("gauss_seidel", "dedicated"))
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=3)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert cells_with_extras(resumed) == cells_with_extras(full)
        # Only the one fully-completed level (2 cells) was reusable.
        assert resumed.reused_cells == 2

    def test_reseed_accounting_reported(self):
        spec = make_spec()
        partial = Campaign(spec).run(workers=1, max_cells=2)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        # A two-level prefix of chain 0 forces one warm-start re-seed.
        assert resumed.reseed_solves > 0
        assert resumed.reseed_evaluations >= resumed.reseed_solves
        acc = resumed.accounting()
        assert acc["reseed"]["solves"] == resumed.reseed_solves
        assert acc["reseed"]["evaluations"] == resumed.reseed_evaluations
        # Re-seed work is *not* charged to any reported cell: totals match
        # the from-scratch run exactly (checked cell-by-cell above); here
        # pin that the summary mentions it instead.
        assert "re-seed" in resumed.format_summary()

    def test_reused_cells_respects_max_cells_truncation(self):
        """A resumed run killed again before consuming all reusable cells
        must report only the reused cells it actually kept."""
        spec = make_spec()
        partial = Campaign(spec).run(workers=1, max_cells=8)
        again = Campaign(spec).run(workers=1, resume_from=partial, max_cells=5)
        assert again.truncated
        assert len(again.cells) == 5
        assert again.reused_cells == 5  # not the 8 that were matched

    def test_chained_kills_resume_to_completion(self):
        """kill -> resume-with-kill -> resume reaches the full result."""
        spec = make_spec()
        full = Campaign(spec).run(workers=1)
        first = Campaign(spec).run(workers=1, max_cells=3)
        second = Campaign(
            spec
        ).run(workers=1, resume_from=first, max_cells=9)
        assert second.truncated
        final = Campaign(spec).run(workers=1, resume_from=second)
        assert cells_with_extras(final) == cells_with_extras(full)

    def test_resume_without_warm_start(self):
        spec = make_spec(warm_start=False)
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=6)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert cells_with_extras(resumed) == cells_with_extras(full)
        # No warm chaining -> nothing to re-seed.
        assert resumed.reseed_solves == 0

    def test_resume_without_sweep_axis(self):
        spec = make_spec(
            grid={"n_transactions": (1, 2, 3)}, sweep_axis=None
        )
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=4)
        resumed = Campaign(spec).run(workers=1, resume_from=partial)
        assert cells_with_extras(resumed) == cells_with_extras(full)

    def test_resume_round_trips_through_json(self, tmp_path):
        spec = make_spec()
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=7)
        loaded = CampaignResult.load_json(
            partial.save_json(tmp_path / "partial.json")
        )
        assert loaded.truncated
        resumed = Campaign(spec).run(workers=1, resume_from=loaded)
        assert cells_with_extras(resumed) == cells_with_extras(full)

    @pytest.mark.dist
    def test_parallel_resume_equals_serial(self):
        spec = make_spec(systems_per_cell=4)
        full = Campaign(spec).run(workers=1)
        partial = Campaign(spec).run(workers=1, max_cells=9)
        resumed = Campaign(spec).run(workers=2, resume_from=partial)
        assert cells_with_extras(resumed) == cells_with_extras(full)


class TestSpecMismatchRejection:
    """resume_from must reject results from a different campaign."""

    @pytest.mark.parametrize(
        "field,override",
        [
            ("seed", {"seed": 99}),
            ("generator", {"generator": "paper", "base": {}, "grid": {}}),
            (
                "base",
                {
                    "base": {
                        "n_platforms": 3,
                        "n_transactions": 2,
                        "tasks_per_transaction": (1, 3),
                    }
                },
            ),
            ("warm_start", {"warm_start": False}),
        ],
    )
    def test_mismatch_rejected(self, field, override):
        donor = Campaign(make_spec(**override)).run(workers=1, max_cells=2)
        with pytest.raises(ValueError, match=field):
            Campaign(make_spec()).run(workers=1, resume_from=donor)

    def test_grid_extension_is_allowed(self):
        """A wider grid is an extension, not a mismatch: old chains that
        still exist are reused (whole or as prefixes)."""
        narrow = make_spec(grid={"utilization": (0.3, 0.5)})
        wide = make_spec(grid={"utilization": (0.3, 0.5, 0.7, 0.9)})
        done = Campaign(narrow).run(workers=1)
        full = Campaign(wide).run(workers=1)
        resumed = Campaign(wide).run(workers=1, resume_from=done)
        assert cells_with_extras(resumed) == cells_with_extras(full)
        # Every narrow-grid cell is a prefix of some wide-grid chain.
        assert resumed.reused_cells == len(done.cells)


class TestCliResumeAfterKill:
    ARGS = [
        "campaign",
        "--grid", "utilization=0.3,0.5,0.7",
        "--transactions", "2",
        "--tasks", "1,2",
        "--systems", "2",
        "--workers", "1",
    ]

    def test_kill_then_resume_matches_uninterrupted(self, tmp_path, capsys):
        full_json = tmp_path / "full.json"
        assert cli_main(self.ARGS + ["--json", str(full_json)]) == 0
        partial_json = tmp_path / "partial.json"
        rc = cli_main(
            self.ARGS + ["--max-cells", "4", "--json", str(partial_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "truncated after 4 cells" in out
        resumed_json = tmp_path / "resumed.json"
        rc = cli_main(
            self.ARGS
            + ["--resume", str(partial_json), "--json", str(resumed_json)]
        )
        assert rc == 0
        assert "resumed: 4 cells" in capsys.readouterr().out
        full = CampaignResult.load_json(full_json)
        resumed = CampaignResult.load_json(resumed_json)
        assert resumed.metrics() == full.metrics()
