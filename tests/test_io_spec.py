"""Tests for system serialization."""

import pytest

from repro.analysis import analyze
from repro.gen import random_system
from repro.io import load_system, save_system, system_from_dict, system_to_dict
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms import (
    CBSServer,
    DedicatedPlatform,
    NetworkLinkPlatform,
    PeriodicServer,
    PFairPlatform,
    StaticPartitionPlatform,
)


class TestRoundTrip:
    def test_paper_example(self):
        s = sensor_fusion_system()
        s2 = system_from_dict(system_to_dict(s))
        assert analyze(s).transaction_wcrt == pytest.approx(
            analyze(s2).transaction_wcrt
        )

    def test_random_system(self):
        s = random_system(seed=11)
        s2 = system_from_dict(system_to_dict(s))
        assert analyze(s).transaction_wcrt == pytest.approx(
            analyze(s2).transaction_wcrt
        )

    def test_task_fields_preserved(self):
        s = sensor_fusion_system()
        s.transactions[0].tasks[0].jitter = 3.5
        s.transactions[0].tasks[0].blocking = 0.25
        d = system_to_dict(s)
        s2 = system_from_dict(d)
        t = s2.transactions[0].tasks[0]
        assert t.jitter == 3.5
        assert t.blocking == 0.25
        assert t.name == s.transactions[0].tasks[0].name

    @pytest.mark.parametrize("platform", [
        DedicatedPlatform(speed=0.5, name="cpu"),
        PeriodicServer(2.0, 5.0, name="srv"),
        CBSServer(1.0, 4.0, name="cbs"),
        StaticPartitionPlatform([(0.0, 1.0), (3.0, 1.0)], cycle=6.0, name="tdm"),
        PFairPlatform(0.3, name="pf"),
        NetworkLinkPlatform(100.0, share=0.5, frame_overhead=4.0, name="bus"),
    ])
    def test_platform_kinds_round_trip(self, platform):
        t = Transaction(period=10.0, tasks=[Task(wcet=0.5, platform=0, priority=1)])
        s = TransactionSystem(transactions=[t], platforms=[platform])
        s2 = system_from_dict(system_to_dict(s))
        p2 = s2.platforms[0]
        assert type(p2) is type(platform)
        assert p2.triple() == pytest.approx(platform.triple())
        assert p2.name == platform.name

    def test_file_round_trip(self, tmp_path):
        s = sensor_fusion_system()
        path = save_system(s, tmp_path / "sub" / "sys.json")
        assert path.exists()
        s2 = load_system(path)
        assert s2.name == s.name
        assert len(s2.transactions) == 4


class TestErrors:
    def test_unknown_version(self):
        with pytest.raises(ValueError, match="schema version"):
            system_from_dict({"version": 99, "platforms": [], "transactions": []})

    def test_unknown_platform_kind(self):
        d = system_to_dict(sensor_fusion_system())
        d["platforms"][0]["kind"] = "quantum"
        with pytest.raises(ValueError, match="unknown platform kind"):
            system_from_dict(d)

    def test_unserializable_platform(self):
        from repro.io.spec import _platform_to_dict

        with pytest.raises(TypeError):
            _platform_to_dict(object())
