"""Campaign dispatcher: queue-fed shards, fault tolerance, auto-merge.

The ISSUE 5 tentpole contract: a dispatched run -- over-partitioned
shards on a work-stealing queue of subprocess slots, cost-aware ``lpt``
partition, one injected mid-shard kill recovered through
relaunch-with-``--resume`` -- must merge to a :class:`CampaignResult`
bit-identical to the unsharded single-process run.  Also covers the
real-kill path (a SIGKILLed subprocess leaves its checkpoint behind),
attempt exhaustion, the ssh command template, and the
``campaign-dispatch`` CLI round trip.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.batch import (
    Campaign,
    CampaignDispatcher,
    CampaignResult,
    CampaignSpec,
    DispatchError,
    LocalBackend,
    SshBackend,
)
from repro.cli import main as cli_main


def make_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        grid={"utilization": (0.3, 0.5, 0.7, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("gauss_seidel",),
        systems_per_cell=6,
        seed=23,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestDispatchEquivalence:
    """The acceptance bar: dispatched == single-process, bit for bit."""

    @pytest.mark.dist
    def test_lpt_dispatch_with_injected_kill_bit_identical(self, tmp_path):
        """>= 4 shards, 2 workers, partition="lpt", one injected kill."""
        spec = make_spec()
        full = Campaign(spec).run(workers=1)
        assert full.chain_costs  # every run records its cost manifest now
        dispatcher = CampaignDispatcher(
            spec,
            shards=4,
            workers=2,
            partition="lpt",
            cost_manifest=full.chain_costs,
            work_dir=tmp_path,
            checkpoint_every=2,
            inject_kills={1: 3},  # shard 1 dies after 3 cells, once
        )
        report = dispatcher.run()
        assert report.result.metrics() == full.metrics()
        assert report.result.spec == full.spec
        killed = next(s for s in report.shards if s.shard == 1)
        assert killed.attempts == 2
        assert killed.resumed_attempts == 1  # recovered via --resume
        assert report.relaunches == 1
        # The queue really fed both slots.
        assert sum(report.shards_per_slot.values()) == len(
            [s for s in report.shards if s.chains > 0]
        )
        # Checkpoints are cleaned up after shard completion.
        assert not list(tmp_path.glob("*.part.json"))

    @pytest.mark.dist
    def test_hash_dispatch_without_faults(self, tmp_path):
        spec = make_spec(systems_per_cell=4)
        full = Campaign(spec).run(workers=1)
        report = CampaignDispatcher(
            spec, shards=3, workers=2, work_dir=tmp_path
        ).run()
        assert report.result.metrics() == full.metrics()
        assert report.relaunches == 0
        for record in report.shards:
            assert record.cells == record.expected_cells


class _KillOnLaunch(LocalBackend):
    """Backend that SIGKILLs selected shards' first attempt.

    ``delay=None`` kills instantly (no partial output survives -- the
    relaunch starts from scratch); a float delay lets the subprocess get
    some checkpoint writes out first.
    """

    def __init__(self, victims: set[int], *, delay: float | None = None,
                 every_attempt: bool = False):
        self.victims = set(victims)
        self.delay = delay
        self.every_attempt = every_attempt
        self.kills = 0

    def launch(self, argv, *, slot, log_path, env=None):
        proc = super().launch(argv, slot=slot, log_path=log_path, env=env)
        shard = int(argv[argv.index("--shard") + 1].split("/")[0])
        if shard in self.victims:
            if not self.every_attempt:
                self.victims.discard(shard)
            self.kills += 1
            if self.delay is None:
                proc.kill()
            else:
                delay = self.delay

                def _later(p=proc, d=delay):
                    time.sleep(d)
                    p.kill()

                threading.Thread(target=_later, daemon=True).start()
        return proc


class TestFaultTolerance:
    @pytest.mark.dist
    def test_sigkilled_shard_relaunches_bit_identical(self, tmp_path):
        """A real process death (no truncated output at all) relaunches
        and still merges bit-identically."""
        spec = make_spec(systems_per_cell=4)
        full = Campaign(spec).run(workers=1)
        backend = _KillOnLaunch({0})
        report = CampaignDispatcher(
            spec, shards=3, workers=2, work_dir=tmp_path, backend=backend
        ).run()
        assert backend.kills == 1
        assert report.result.metrics() == full.metrics()
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempts == 2

    @pytest.mark.dist
    def test_attempts_exhausted_raises_dispatch_error(self, tmp_path):
        spec = make_spec(systems_per_cell=2)
        backend = _KillOnLaunch({0}, every_attempt=True)
        dispatcher = CampaignDispatcher(
            spec, shards=2, workers=1, work_dir=tmp_path,
            backend=backend, max_attempts=2,
        )
        with pytest.raises(DispatchError, match="shard 0/2"):
            dispatcher.run()
        assert backend.kills == 2

    def test_resume_source_prefers_final_over_checkpoint(self, tmp_path):
        spec = make_spec(systems_per_cell=2)
        dispatcher = CampaignDispatcher(
            spec, shards=2, workers=1, work_dir=tmp_path
        )
        tmp_path.mkdir(exist_ok=True)
        partial = Campaign(spec).run(workers=1, max_cells=2)
        assert dispatcher._resume_source(0) is None
        partial.save_json(dispatcher._checkpoint_path(0))
        assert dispatcher._resume_source(0) == dispatcher._checkpoint_path(0)
        partial.save_json(dispatcher._out_path(0))
        assert dispatcher._resume_source(0) == dispatcher._out_path(0)
        # A corrupt file is skipped, not trusted.
        dispatcher._out_path(0).write_text("{garbage")
        assert dispatcher._resume_source(0) == dispatcher._checkpoint_path(0)

    def test_constructor_validation(self, tmp_path):
        spec = make_spec()
        for kwargs in (
            {"shards": 0, "workers": 1},
            {"shards": 1, "workers": 0},
            {"shards": 1, "workers": 1, "max_attempts": 0},
            {"shards": 1, "workers": 1, "checkpoint_every": 0},
        ):
            with pytest.raises(ValueError):
                CampaignDispatcher(spec, work_dir=tmp_path, **kwargs)
        with pytest.raises(KeyError, match="unknown campaign method"):
            CampaignDispatcher(
                make_spec(methods=("nope",)),
                shards=1, workers=1, work_dir=tmp_path,
            )


class TestStaleWorkDir:
    """Reused work dirs (ISSUE 6 bugfix): files from a different spec
    must be skipped, not resumed from or accepted as results."""

    @pytest.mark.dist
    def test_dirty_work_dir_completes_without_relaunches(self, tmp_path):
        """Dispatch B into A's work dir: before the ownership check this
        wedged -- every shard resumed from A's files, produced 'wrong'
        output, and burned all max_attempts relaunches."""
        spec_a = make_spec(systems_per_cell=2)
        spec_b = make_spec(systems_per_cell=2, seed=99)
        CampaignDispatcher(
            spec_a, shards=2, workers=1, work_dir=tmp_path
        ).run()
        # A's shard outputs survive in the dir; also plant them as stale
        # checkpoints at the exact paths B's shards will probe.
        for shard in range(2):
            out = tmp_path / f"shard{shard:04d}.json"
            assert out.exists()
            (tmp_path / f"shard{shard:04d}.part.json").write_text(
                out.read_text()
            )
        dispatcher = CampaignDispatcher(
            spec_b, shards=2, workers=1, work_dir=tmp_path
        )
        report = dispatcher.run()
        full = Campaign(spec_b).run(workers=1)
        assert report.result.metrics() == full.metrics()
        assert report.relaunches == 0
        for record in report.shards:
            assert record.attempts == 1
            assert record.resumed_attempts == 0

    def test_resume_source_skips_foreign_spec(self, tmp_path):
        spec_a = make_spec(systems_per_cell=2)
        spec_b = make_spec(systems_per_cell=2, seed=99)
        dispatcher = CampaignDispatcher(
            spec_b, shards=2, workers=1, work_dir=tmp_path
        )
        foreign = Campaign(spec_a).run(workers=1, max_cells=2)
        foreign.save_json(dispatcher._out_path(0))
        foreign.save_json(dispatcher._checkpoint_path(0))
        assert dispatcher._resume_source(0) is None
        # Our own partial is still picked up next to the foreign files.
        ours = Campaign(spec_b).run(workers=1, max_cells=2)
        ours.save_json(dispatcher._checkpoint_path(0))
        assert dispatcher._resume_source(0) == dispatcher._checkpoint_path(0)

    def test_resume_source_skips_foreign_shard_designator(self, tmp_path):
        spec = make_spec(systems_per_cell=2)
        dispatcher = CampaignDispatcher(
            spec, shards=2, workers=1, work_dir=tmp_path
        )
        # Same spec, but sharded 1/3 -- a leftover from a dispatch with a
        # different shard count; its cells are the wrong subset.
        other = Campaign(spec).run(workers=1, shard=(1, 3))
        other.save_json(dispatcher._checkpoint_path(0))
        assert dispatcher._resume_source(0) is None

    def test_shard_complete_rejects_foreign_spec(self, tmp_path):
        from repro.batch.dispatch import ShardRecord

        spec_a = make_spec(systems_per_cell=2)
        spec_b = make_spec(systems_per_cell=2, seed=99)
        dispatcher = CampaignDispatcher(
            spec_b, shards=2, workers=1, work_dir=tmp_path
        )
        foreign = Campaign(spec_a).run(workers=1, shard=(0, 2))
        foreign.save_json(dispatcher._out_path(0))
        record = ShardRecord(
            shard=0, chains=1, expected_cells=len(foreign.cells),
            estimated_cost=0.0,
        )
        # Complete by every count, but the wrong spec: never accepted.
        assert dispatcher._shard_complete(record) is None
        ours = Campaign(spec_b).run(workers=1, shard=(0, 2))
        ours.save_json(dispatcher._out_path(0))
        record.expected_cells = len(ours.cells)
        accepted = dispatcher._shard_complete(record)
        assert accepted is not None
        assert accepted.metrics() == ours.metrics()


class TestShardArgsValidation:
    def test_collection_disabling_flags_rejected(self, tmp_path):
        spec = make_spec()
        for bad in (
            ["--no-collect"],
            ["--collect", "none"],
            ["--collect=none"],
        ):
            with pytest.raises(ValueError, match="disable cell collection"):
                CampaignDispatcher(
                    spec, shards=1, workers=1, work_dir=tmp_path,
                    shard_args=bad,
                )

    def test_dispatcher_owned_flags_rejected(self, tmp_path):
        spec = make_spec()
        for bad in (["--json", "x.json"], ["--checkpoint=x"], ["--resume"]):
            with pytest.raises(ValueError, match="may not set"):
                CampaignDispatcher(
                    spec, shards=1, workers=1, work_dir=tmp_path,
                    shard_args=bad,
                )

    def test_benign_shard_args_accepted(self, tmp_path):
        CampaignDispatcher(
            make_spec(), shards=1, workers=1, work_dir=tmp_path,
            shard_args=["--chunk-size", "2", "--collect", "pickle"],
        )


class TestLogExcerpt:
    def test_excerpt_is_last_ten_lines(self, tmp_path):
        dispatcher = CampaignDispatcher(
            make_spec(), shards=1, workers=1, work_dir=tmp_path
        )
        tmp_path.mkdir(exist_ok=True)
        dispatcher._log_path(0).write_text(
            "\n".join(f"line {i}" for i in range(15)) + "\n"
        )
        excerpt = dispatcher._log_excerpt(0)
        assert excerpt.startswith("\nlast log lines:\n")
        assert "line 5" in excerpt and "line 14" in excerpt
        assert "line 4" not in excerpt

    def test_missing_or_empty_log_gives_nothing(self, tmp_path):
        dispatcher = CampaignDispatcher(
            make_spec(), shards=1, workers=1, work_dir=tmp_path
        )
        assert dispatcher._log_excerpt(0) == ""
        tmp_path.mkdir(exist_ok=True)
        dispatcher._log_path(0).write_text("  \n")
        assert dispatcher._log_excerpt(0) == ""


class TestDispatchStore:
    @pytest.mark.dist
    def test_second_dispatch_serves_everything(self, tmp_path):
        from repro.batch import ResultStore

        spec = make_spec(systems_per_cell=2)
        store_root = tmp_path / "store"
        first = CampaignDispatcher(
            spec, shards=2, workers=2,
            work_dir=tmp_path / "wd1", store=store_root,
        ).run()
        assert first.result.store_hits == 0
        assert first.result.store_misses == spec.n_analyses()
        second = CampaignDispatcher(
            spec, shards=2, workers=2,
            work_dir=tmp_path / "wd2", store=store_root,
        ).run()
        assert second.result.store_hits == spec.n_analyses()
        assert second.result.store_misses == 0
        assert second.result.metrics() == first.result.metrics()
        assert ResultStore(store_root).stats().entries == spec.n_analyses()


class TestSshBackend:
    def test_command_template_is_mockable(self, tmp_path):
        """Substituting the ssh command exercises the full template
        without a network: the 'remote' command line lands in the log."""
        backend = SshBackend(
            ["alpha", "beta"], ssh_command=("echo",), remote_python=("python3",)
        )
        log = tmp_path / "shard.log"
        argv = ["/usr/local/bin/python", "-m", "repro", "campaign",
                "--shard", "1/4"]
        proc = backend.launch(argv, slot=3, log_path=log)
        assert proc.wait() == 0
        line = log.read_text()
        assert line.startswith("beta ")  # slot 3 of 2 hosts -> hosts[1]
        assert "python3 -m repro campaign --shard 1/4" in line
        assert "/usr/local/bin/python" not in line  # head rewritten

    def test_needs_hosts(self):
        with pytest.raises(ValueError, match="at least one host"):
            SshBackend([])

    def test_slot_pinning_round_robins_hosts(self):
        backend = SshBackend(["alpha", "beta", "gamma"])
        assert [backend.host_of(s) for s in range(6)] == [
            "alpha", "beta", "gamma", "alpha", "beta", "gamma",
        ]

    def test_arguments_with_spaces_survive_quoting(self, tmp_path):
        """The remote command is one shell-quoted string; a work-dir path
        with spaces must come out of the remote shell as one argument."""
        backend = SshBackend(["h0"], ssh_command=("echo",))
        log = tmp_path / "shard.log"
        spaced = str(tmp_path / "my work dir" / "spec.json")
        argv = ["python", "-m", "repro", "campaign", "--spec", spaced]
        proc = backend.launch(argv, slot=0, log_path=log)
        assert proc.wait() == 0
        remote = log.read_text().split(" ", 1)[1].strip()
        import shlex

        assert shlex.split(remote) == [
            "python3", "-m", "repro", "campaign", "--spec", spaced,
        ]

    def test_remote_python_override(self, tmp_path):
        """A venv interpreter (multi-word command) replaces the head."""
        backend = SshBackend(
            ["h0"], ssh_command=("echo",),
            remote_python=("/opt/venv/bin/python", "-u"),
        )
        log = tmp_path / "shard.log"
        proc = backend.launch(
            ["python", "-m", "repro", "campaign"], slot=0, log_path=log
        )
        assert proc.wait() == 0
        assert "/opt/venv/bin/python -u -m repro campaign" in log.read_text()

    def test_fault_plan_env_crosses_the_ssh_hop(self, tmp_path):
        """REPRO_FAULT_PLAN must be forwarded into the remote command (as
        an ``env`` prefix); the rest of the local environment must not."""
        from repro.batch.faults import FAULT_ENV

        backend = SshBackend(["h0"], ssh_command=("echo",))
        log = tmp_path / "shard.log"
        payload = '[{"kind": "kill", "at_cell": 2}]'
        env = {"PYTHONPATH": "/secret/local/path", FAULT_ENV: payload}
        proc = backend.launch(
            ["python", "-m", "repro"], slot=0, log_path=log, env=env
        )
        assert proc.wait() == 0
        remote = log.read_text()
        import shlex

        assert shlex.split(remote.split(" ", 1)[1])[:2] == [
            "env", f"{FAULT_ENV}={payload}",
        ]
        assert "/secret/local/path" not in remote
        # No fault plan, no env prefix.
        log2 = tmp_path / "shard2.log"
        proc = backend.launch(
            ["python", "-m", "repro"], slot=0, log_path=log2,
            env={"PYTHONPATH": "/x"},
        )
        assert proc.wait() == 0
        assert "env" not in shlex.split(log2.read_text())


class TestCliDispatch:
    ARGS = [
        "campaign-dispatch",
        "--grid", "utilization=0.3,0.6,0.9",
        "--transactions", "2",
        "--tasks", "1,2",
        "--systems", "3",
        "--workers", "2",
        "--shards", "4",
        "--partition", "lpt",
    ]

    @pytest.mark.dist
    def test_round_trip_matches_single_run(self, tmp_path, capsys):
        merged_json = tmp_path / "merged.json"
        rc = cli_main(
            self.ARGS
            + ["--work-dir", str(tmp_path / "wd"),
               "--json", str(merged_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dispatched 4 shard(s) over 2 worker slot(s)" in out
        merged = CampaignResult.load_json(merged_json)
        spec = CampaignSpec.from_dict(merged.spec)
        full = Campaign(spec).run(workers=1)
        assert merged.metrics() == full.metrics()
        # The work dir was explicit, so the shard files survive for
        # inspection -- including the spec the subprocesses consumed.
        assert (tmp_path / "wd" / "spec.json").exists()

    def test_bad_hosts_exit_2(self, capsys):
        rc = cli_main(self.ARGS + ["--hosts", "telnet:alpha"])
        assert rc == 2
        assert "ssh:HOST" in capsys.readouterr().err

    def test_spec_file_reproduces_flag_run(self, tmp_path):
        """--spec must describe the identical campaign the flags do (it
        is how dispatch subprocesses receive their work)."""
        args = [
            "campaign",
            "--grid", "utilization=0.4,0.8",
            "--transactions", "2",
            "--tasks", "1,2",
            "--systems", "2",
        ]
        flag_json = tmp_path / "flags.json"
        assert cli_main(args + ["--json", str(flag_json)]) == 0
        flags = CampaignResult.load_json(flag_json)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(flags.spec))
        spec_json = tmp_path / "spec_run.json"
        rc = cli_main(
            ["campaign", "--spec", str(spec_path), "--json", str(spec_json)]
        )
        assert rc == 0
        assert CampaignResult.load_json(spec_json).metrics() == flags.metrics()
