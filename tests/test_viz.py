"""Tests for text-based visualization helpers."""

import numpy as np
import pytest

from repro.viz import (
    ascii_plot,
    ascii_step_plot,
    format_table,
    series_to_rows,
    write_csv,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["A", "Blong"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_column_count_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["A"], [["1", "2"]])

    def test_width_adapts(self):
        out = format_table(["x"], [["very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(sep) >= len("very-long-cell")


class TestAsciiPlot:
    def test_contains_series_markers_and_legend(self):
        xs = np.linspace(0, 10, 50)
        out = ascii_plot(
            [("lin", xs, xs), ("quad", xs, xs**2 / 10)],
            width=40,
            height=10,
            title="demo",
        )
        assert "demo" in out
        assert "* lin" in out
        assert "o quad" in out
        assert "*" in out.split("\n", 2)[2]

    def test_axis_labels_present(self):
        xs = [0.0, 5.0]
        out = ascii_plot([("s", xs, [1.0, 2.0])], width=30, height=8)
        assert "2" in out  # y max label
        assert "0" in out  # x min label

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([])

    def test_constant_series_ok(self):
        out = ascii_plot([("c", [0, 1, 2], [3, 3, 3])], width=20, height=5)
        assert "c" in out

    def test_step_plot_runs(self):
        out = ascii_step_plot(
            [("steps", [0, 1, 2, 3], [0, 1, 1, 4])], width=30, height=8
        )
        assert "steps" in out


class TestCsv:
    def test_series_to_rows(self):
        header, rows = series_to_rows({"t": [1, 2], "y": [3, 4]})
        assert header == ["t", "y"]
        assert rows == [[1.0, 3.0], [2.0, 4.0]]

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            series_to_rows({"a": [1], "b": [1, 2]})

    def test_write_csv_creates_dirs(self, tmp_path):
        path = write_csv(tmp_path / "a" / "b.csv", ["x"], [[1.5]])
        assert path.exists()
        assert path.read_text().splitlines() == ["x", "1.5"]
