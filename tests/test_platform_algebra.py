"""Unit tests for numeric supply-bound extraction and verification."""

import pytest

from repro.platforms.algebra import (
    as_linear,
    extract_linear_bounds,
    verify_linear_bounds,
    verify_supply_sanity,
)
from repro.platforms.linear import LinearSupplyPlatform
from repro.platforms.partition import StaticPartitionPlatform
from repro.platforms.periodic_server import PeriodicServer
from repro.platforms.pfair import PFairPlatform


class TestExtractLinearBounds:
    def test_recovers_periodic_server_triple(self):
        s = PeriodicServer(2.0, 5.0)
        est = extract_linear_bounds(s, horizon=20 * 5.0, rate=s.rate)
        assert est.rate == pytest.approx(0.4)
        assert est.delay == pytest.approx(s.delay, abs=0.05)
        assert est.burstiness == pytest.approx(s.burstiness, abs=0.05)

    def test_rate_estimated_when_not_given(self):
        s = PeriodicServer(2.0, 5.0)
        est = extract_linear_bounds(s, horizon=200 * 5.0)
        assert est.rate == pytest.approx(0.4, rel=0.02)

    def test_linear_platform_is_its_own_bounds(self):
        p = LinearSupplyPlatform(0.3, 2.0, 0.5)
        est = extract_linear_bounds(p, horizon=100.0, rate=0.3)
        assert est.delay == pytest.approx(2.0, abs=1e-6)
        assert est.burstiness == pytest.approx(0.5, abs=1e-6)

    def test_as_platform(self):
        est = extract_linear_bounds(PeriodicServer(1.0, 4.0), horizon=80.0, rate=0.25)
        p = est.as_platform(name="est")
        assert p.rate == est.rate
        assert p.name == "est"

    def test_rejects_tiny_sample_count(self):
        with pytest.raises(ValueError):
            extract_linear_bounds(PeriodicServer(1.0, 4.0), horizon=10.0, samples=4)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            extract_linear_bounds(PeriodicServer(1.0, 4.0), horizon=0.0)


class TestVerify:
    @pytest.mark.parametrize("platform", [
        PeriodicServer(2.0, 5.0),
        PFairPlatform(0.3),
        StaticPartitionPlatform([(0.0, 1.0), (4.0, 1.0)], cycle=8.0),
        LinearSupplyPlatform(0.5, 1.0, 1.0),
    ])
    def test_advertised_triples_are_valid(self, platform):
        assert verify_linear_bounds(platform, horizon=100.0)

    def test_detects_lying_platform(self):
        class Liar(LinearSupplyPlatform):
            @property
            def delay(self):
                return 0.0  # claims no delay but zmin says otherwise

        liar = Liar.__new__(Liar)
        LinearSupplyPlatform.__init__(liar, 0.5, 2.0, 0.0)
        liar.__class__ = Liar
        assert not verify_linear_bounds(liar, horizon=50.0)

    @pytest.mark.parametrize("platform", [
        PeriodicServer(2.0, 5.0),
        PFairPlatform(0.3),
        StaticPartitionPlatform([(1.0, 2.0)], cycle=6.0),
    ])
    def test_sanity_unit_speed(self, platform):
        assert verify_supply_sanity(platform, horizon=60.0, unit_speed=True)

    def test_sanity_rejects_decreasing_supply(self):
        class Bad(LinearSupplyPlatform):
            def zmin(self, t):
                return max(0.0, 5.0 - t)  # decreasing: nonsense

        bad = Bad(0.5, 0.0, 0.0)
        assert not verify_supply_sanity(bad, horizon=20.0)


class TestAsLinear:
    def test_flattens_server(self):
        s = PeriodicServer(2.0, 5.0, name="srv")
        lin = as_linear(s)
        assert lin.triple() == s.triple()
        assert lin.name == "srv"
        # The flattening is pessimistic: linear zmin <= exact zmin.
        for t in (1.0, 6.5, 9.0, 14.0):
            assert lin.zmin(t) <= s.zmin(t) + 1e-12
