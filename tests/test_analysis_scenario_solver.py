"""Direct unit tests of the per-scenario busy-period solver."""

import math

import pytest

from repro.analysis._scenario import solve_scenario
from repro.analysis.busy import AnalyzedTask


def analyzed(
    *,
    period=50.0,
    phi=0.0,
    jitter=0.0,
    cost=5.0,
    blocking=0.0,
    delay=2.0,
    deadline=50.0,
):
    return AnalyzedTask(
        txn=0,
        idx=0,
        period=period,
        deadline=deadline,
        phi=phi,
        jitter=jitter,
        cost=cost,
        blocking=blocking,
        delay=delay,
        priority=1,
        platform=0,
    )


class TestNoInterference:
    def test_single_job(self):
        # Self-started scenario: phase = period, p0 = 0, one job.
        out = solve_scenario(
            analyzed(), phi_ab=50.0, interference=lambda t: 0.0, bound=1e6
        )
        assert out.response == pytest.approx(7.0)  # delay + cost
        assert out.worst_job == 0
        assert out.jobs_checked == 1

    def test_blocking_added(self):
        out = solve_scenario(
            analyzed(blocking=3.0), phi_ab=50.0,
            interference=lambda t: 0.0, bound=1e6,
        )
        assert out.response == pytest.approx(10.0)

    def test_jitter_extends_response(self):
        # J=19, phi=5 (the tau_1_4 endgame): R = 7 + 5 + 19 = 31.
        out = solve_scenario(
            analyzed(phi=5.0, jitter=19.0), phi_ab=31.0,
            interference=lambda t: 0.0, bound=1e6,
        )
        assert out.response == pytest.approx(31.0)


class TestInterference:
    def test_constant_interference(self):
        out = solve_scenario(
            analyzed(), phi_ab=50.0,
            interference=lambda t: 5.0, bound=1e6,
        )
        assert out.response == pytest.approx(12.0)

    def test_step_interference_converges(self):
        # One interfering job of cost 2.5 arriving at t=5.
        def interf(t):
            return 2.5 if t > 5.0 else 0.0

        out = solve_scenario(
            analyzed(cost=4.9, delay=1.0), phi_ab=50.0,
            interference=interf, bound=1e6,
        )
        # w: 1 + 4.9 = 5.9 > 5 -> +2.5 -> 8.4 stable.
        assert out.response == pytest.approx(8.4)

    def test_multiple_jobs_in_busy_period(self):
        # Dense period: cost 6 per job, period 10 -> two jobs pile up under
        # heavy interference in the first window.
        def interf(t):
            return 5.0 if t > 0 else 0.0

        out = solve_scenario(
            analyzed(period=10.0, cost=6.0, delay=0.0, deadline=100.0),
            phi_ab=10.0,
            interference=interf,
            bound=1e6,
        )
        # L = 5 + k*6 with arrivals at 10, 20, ...: L=11 -> 2 jobs -> 17 ->
        # 2 jobs (ceil((17-10)/10)=1 -> p_L=1) -> L=17.
        # Job p=0: w=11, R=11-(10-10)=11; p=1: w=17, R=17-10=7.
        assert out.busy_length == pytest.approx(17.0)
        assert out.jobs_checked == 2
        assert out.response == pytest.approx(11.0)
        assert out.worst_job == 0

    def test_scenario_without_own_job(self):
        # Foreign-started busy period that closes before the analyzed
        # task's first arrival: nothing to check.
        out = solve_scenario(
            analyzed(cost=1.0, delay=0.0), phi_ab=45.0,
            interference=lambda t: 2.0 if t > 0 else 0.0, bound=1e6,
        )
        assert out.response == float("-inf")
        assert out.jobs_checked == 0


class TestDivergence:
    def test_busy_period_divergence(self):
        out = solve_scenario(
            analyzed(period=5.0, cost=6.0), phi_ab=5.0,
            interference=lambda t: 0.0, bound=1e4,
        )
        assert math.isinf(out.response)
        assert out.response > 0

    def test_interference_divergence(self):
        out = solve_scenario(
            analyzed(), phi_ab=50.0,
            interference=lambda t: t * 1.1, bound=1e4,
        )
        assert math.isinf(out.response)
