"""The flagship reproduction test: Table 3 of the paper, cell by cell.

Every (J, R) pair of the published iteration trace must be reproduced
exactly, except the two R = 39 cells of tau_1_4, where the paper's own
equations give 31 (see DESIGN.md Sec. 4 and EXPERIMENTS.md): tau_1_4 is the
highest-priority task on Pi3, so w = Delta + C/alpha = 7 and
R = w + phi + J = 7 + 5 + 19 = 31.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.paper import (
    PAPER_TABLE3_CORRECTED,
    paper_table3_rows,
    sensor_fusion_system,
)


@pytest.fixture(scope="module")
def traced():
    return analyze(sensor_fusion_system(), trace=True)


class TestIterationTrace:
    def test_converges_in_four_iterations(self, traced):
        assert traced.converged
        assert len(traced.iterations) == 4

    @pytest.mark.parametrize("j,expected", [
        (0, [(0, 12), (0, 12), (0, 12), (0, 12)]),
        (1, [(0, 9), (9, 18), (9, 18), (9, 18)]),
        (2, [(0, 10), (5, 15), (14, 24), (14, 24)]),
        (3, [(0, 12), (5, 17), (10, 22), (19, 31)]),
    ])
    def test_gamma1_cells(self, traced, j, expected):
        for n, (jit, resp) in enumerate(expected):
            row = traced.iterations[n]
            assert row.jitters[(0, j)] == pytest.approx(jit), f"J({n}) of task {j}"
            assert row.responses[(0, j)] == pytest.approx(resp), f"R({n}) of task {j}"

    def test_published_cells_match_except_documented_discrepancy(self, traced):
        rows = paper_table3_rows()
        mismatches = []
        for j, row in enumerate(rows):
            for n, (jp, rp) in enumerate(zip(row["J"], row["R"])):
                if jp is None or n >= len(traced.iterations):
                    continue
                it = traced.iterations[n]
                ours_j = it.jitters[(0, j)]
                ours_r = it.responses[(0, j)]
                if abs(ours_j - jp) > 1e-9 or abs(ours_r - rp) > 1e-9:
                    mismatches.append((j, n, (jp, rp), (ours_j, ours_r)))
        # The only mismatching cells are the R=39 entries of tau_1_4
        # (iterations 3 and 4 in the paper; we converge at 3).
        for (j, n, paper_cell, ours) in mismatches:
            assert j == 3, f"unexpected mismatch in task {j}: {paper_cell} vs {ours}"
            assert paper_cell[1] == 39.0
            assert ours[1] == pytest.approx(PAPER_TABLE3_CORRECTED)
        assert len(mismatches) == 1


class TestFinalResults:
    def test_schedulable_verdict(self, traced):
        assert traced.schedulable

    def test_gamma1_end_to_end(self, traced):
        assert traced.wcrt(0, 3) == pytest.approx(31.0)
        assert traced.slack(0) == pytest.approx(19.0)

    def test_sensor_polls(self, traced):
        # tau_2_1/tau_3_1: Delta + C/alpha = 1 + 2.5 = 3.5, no interference
        # above priority 3 on Pi1/Pi2.
        assert traced.wcrt(1, 0) == pytest.approx(3.5)
        assert traced.wcrt(2, 0) == pytest.approx(3.5)

    def test_background_meets_deadline(self, traced):
        assert traced.wcrt(3, 0) <= 70.0

    def test_best_cases_match_table1_offsets(self, traced):
        # phi_min column of Table 1: 0, 3, 4, 5.
        for j, phi in [(0, 0.0), (1, 3.0), (2, 4.0), (3, 5.0)]:
            assert traced.tasks[(0, j)].offset == pytest.approx(phi)

    def test_final_jitters(self, traced):
        for j, jit in [(0, 0.0), (1, 9.0), (2, 14.0), (3, 19.0)]:
            assert traced.tasks[(0, j)].jitter == pytest.approx(jit)


class TestExactMethodAgrees:
    def test_exact_gives_same_trace_on_example(self):
        """The example is small enough for the exact analysis; Tindell's
        W* maximization introduces no pessimism here because every foreign
        transaction has a single interfering task."""
        exact = analyze(
            sensor_fusion_system(),
            config=AnalysisConfig(method="exact"),
            trace=True,
        )
        reduced = analyze(sensor_fusion_system(), trace=True)
        assert exact.transaction_wcrt == pytest.approx(reduced.transaction_wcrt)


class TestIterationAccounting:
    """Regression pins for the ISSUE 1 accounting fix: ``outer_iterations``
    and the inner ``evaluations`` are consistent across the outer rounds,
    and divergent solves are charged rather than dropped."""

    def test_outer_iterations_pin(self, traced):
        # The Table 3 trace: four outer Jacobi rounds to convergence.
        assert traced.outer_iterations == 4
        assert traced.outer_iterations == len(traced.iterations)

    def test_evaluations_reproducible_and_positive(self, traced):
        again = analyze(sensor_fusion_system(), trace=True)
        assert traced.evaluations > 0
        assert again.evaluations == traced.evaluations
        # Tracing must not change the accounting.
        untraced = analyze(sensor_fusion_system())
        assert untraced.evaluations == traced.evaluations

    def test_evaluations_scale_with_outer_rounds(self, traced):
        # Every outer round re-solves every task at least once: the total
        # is bounded below by (rounds x tasks).
        n_tasks = len(traced.tasks)
        assert traced.evaluations >= traced.outer_iterations * n_tasks

    def test_diverged_analysis_still_accounts_evaluations(self):
        """An unschedulable system's busy periods never close; the
        evaluations spent discovering that must still be reported (they
        were historically discarded with the FixedPointDiverged)."""
        gen = pytest.importorskip(
            "repro.gen", reason="random-system generation needs NumPy"
        )
        RandomSystemSpec, random_system = gen.RandomSystemSpec, gen.random_system

        system = random_system(
            RandomSystemSpec(
                n_platforms=2,
                n_transactions=3,
                tasks_per_transaction=(2, 3),
                utilization=2.5,  # far past saturation
            ),
            seed=0,
        )
        result = analyze(system)
        assert not result.schedulable
        assert any(r == float("inf") for r in result.transaction_wcrt)
        assert result.evaluations > 0

    def test_scenario_outcome_counts_divergent_solves(self):
        """Unit-level pin of the fix: the per-scenario evaluation count
        includes the iterations of a solve that diverged."""
        from repro.analysis._scenario import solve_scenario
        from repro.analysis.busy import AnalyzedTask

        analyzed = AnalyzedTask(
            txn=0, idx=0, period=10.0, deadline=10.0, phi=0.0, jitter=0.0,
            cost=2.0, blocking=0.0, delay=0.0, priority=1, platform=0,
        )
        # Interference with unit slope: the busy period never closes.
        outcome = solve_scenario(
            analyzed, 10.0, lambda t: t + 5.0, bound=100.0
        )
        assert outcome.response == float("inf")
        assert outcome.evaluations > 0
