"""Doctest smoke: the executable examples in the public docstrings."""

import doctest

import repro
import repro.analysis.schedulability


class TestDoctests:
    def test_package_quickstart(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2  # the quickstart is actually executed

    def test_analyze_docstring(self):
        results = doctest.testmod(repro.analysis.schedulability, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1
