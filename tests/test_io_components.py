"""Tests for component/assembly serialization and the derive CLI."""

import json

import pytest

from repro.analysis import analyze
from repro.cli import main
from repro.components.scheduler import EDFScheduler
from repro.gen import random_assembly
from repro.io import (
    assembly_from_dict,
    assembly_to_dict,
    component_from_dict,
    component_to_dict,
    load_assembly,
    save_assembly,
)
from repro.paper import sensor_fusion_components


class TestComponentRoundTrip:
    def test_sensor_component(self):
        asm = sensor_fusion_components()
        comp = asm.instances["Sensor1"]
        d = component_to_dict(comp)
        back = component_from_dict(comp.name, d)
        assert back.name == comp.name
        assert [m.name for m in back.provided] == [m.name for m in comp.provided]
        assert len(back.threads) == len(comp.threads)
        assert back.scheduler.policy == "fixed_priority"

    def test_priority_override_preserved(self):
        asm = sensor_fusion_components()
        comp = asm.instances["Integrator"]
        back = component_from_dict(comp.name, component_to_dict(comp))
        periodic = back.periodic_threads()[0]
        task_steps = periodic.task_steps()
        assert task_steps[-1].priority == 3  # compute override

    def test_edf_scheduler_round_trip(self):
        from repro.components import Component, PeriodicThread, TaskStep

        comp = Component(
            name="E",
            threads=[PeriodicThread(name="t", priority=1, period=5.0,
                                    body=[TaskStep("a", wcet=1.0)])],
            scheduler=EDFScheduler(),
        )
        back = component_from_dict("E", component_to_dict(comp))
        assert back.scheduler.policy == "edf"

    def test_unknown_scheduler_rejected(self):
        asm = sensor_fusion_components()
        d = component_to_dict(asm.instances["Sensor1"])
        d["scheduler"] = "lottery"
        with pytest.raises(ValueError, match="scheduler"):
            component_from_dict("X", d)

    def test_unknown_step_kind_rejected(self):
        asm = sensor_fusion_components()
        d = component_to_dict(asm.instances["Sensor1"])
        d["threads"][0]["body"][0]["kind"] = "teleport"
        with pytest.raises(ValueError, match="step kind"):
            component_from_dict("X", d)


class TestAssemblyRoundTrip:
    def test_paper_assembly(self):
        asm = sensor_fusion_components()
        back = assembly_from_dict(assembly_to_dict(asm))
        assert set(back.instances) == set(asm.instances)
        assert back.platform_names == asm.platform_names
        assert set(back.bindings) == set(asm.bindings)
        # Equivalent analysis results after the transform.
        ra = analyze(asm.derive_transactions())
        rb = analyze(back.derive_transactions())
        assert sorted(ra.transaction_wcrt) == pytest.approx(
            sorted(rb.transaction_wcrt)
        )

    def test_random_assembly_round_trip(self):
        asm = random_assembly(seed=5)
        back = assembly_from_dict(assembly_to_dict(asm))
        ra = analyze(asm.derive_transactions())
        rb = analyze(back.derive_transactions())
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)

    def test_messages_round_trip(self, tmp_path):
        import sys
        sys.path.insert(0, "benchmarks")
        from bench_e11_network import build

        asm = build(share=0.8)
        path = save_assembly(asm, tmp_path / "net.json")
        back = load_assembly(path)
        b = back.binding_for("Integrator", "readSensor1")
        assert b.request is not None and b.request.payload == 2.0
        assert b.network == "bus"
        ra = analyze(asm.derive_transactions())
        rb = analyze(back.derive_transactions())
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)

    def test_version_checked(self):
        with pytest.raises(ValueError, match="schema version"):
            assembly_from_dict({"version": 9})

    def test_dangling_instance_class(self):
        d = assembly_to_dict(sensor_fusion_components())
        d["instances"]["Ghost"] = "NoSuchClass"
        with pytest.raises(ValueError, match="unknown class"):
            assembly_from_dict(d)


class TestDeriveCli:
    def test_derive_then_analyze(self, tmp_path, capsys):
        asm_path = save_assembly(sensor_fusion_components(), tmp_path / "asm.json")
        sys_path = tmp_path / "sys.json"
        assert main(["derive", str(asm_path), "--out", str(sys_path)]) == 0
        out = capsys.readouterr().out
        assert "derived 4 transactions / 7 tasks" in out
        assert main(["analyze", str(sys_path)]) == 0

    def test_derive_invalid_assembly_exit_two(self, tmp_path, capsys):
        asm = sensor_fusion_components()
        d = assembly_to_dict(asm)
        d["placements"].pop("Sensor1")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(d))
        assert main(["derive", str(path), "--out", str(tmp_path / "o.json")]) == 2
