"""Unit tests for TransactionSystem."""

import pytest

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform


def simple_system(n_platforms=2):
    platforms = [DedicatedPlatform() for _ in range(n_platforms)]
    t1 = Transaction(
        period=10.0,
        tasks=[
            Task(wcet=1.0, platform=0, priority=2),
            Task(wcet=2.0, platform=1, priority=1),
        ],
        name="G1",
    )
    t2 = Transaction(
        period=20.0, tasks=[Task(wcet=4.0, platform=0, priority=1)], name="G2"
    )
    return TransactionSystem(transactions=[t1, t2], platforms=platforms)


class TestConstruction:
    def test_valid(self):
        s = simple_system()
        assert len(s) == 2
        assert s.total_tasks() == 3

    def test_rejects_out_of_range_platform(self):
        with pytest.raises(ValueError, match="platform"):
            simple_system(n_platforms=1)

    def test_rejects_platform_without_triple(self):
        t = Transaction(period=1.0, tasks=[Task(wcet=0.5, platform=0, priority=1)])
        with pytest.raises(TypeError, match="rate"):
            TransactionSystem(transactions=[t], platforms=[object()])

    def test_rejects_non_transaction(self):
        with pytest.raises(TypeError):
            TransactionSystem(transactions=[42], platforms=[DedicatedPlatform()])


class TestQueries:
    def test_tasks_on(self):
        s = simple_system()
        on0 = s.tasks_on(0)
        assert [(i, j) for i, j, _ in on0] == [(0, 0), (1, 0)]
        assert all(t.platform == 0 for _, _, t in on0)

    def test_utilization_dedicated(self):
        s = simple_system()
        # platform 0: 1/10 + 4/20 = 0.3; platform 1: 2/10 = 0.2
        assert s.utilization(0) == pytest.approx(0.3)
        assert s.utilization(1) == pytest.approx(0.2)
        assert s.utilizations() == pytest.approx([0.3, 0.2])

    def test_utilization_scales_with_rate(self):
        platforms = [LinearSupplyPlatform(0.5), DedicatedPlatform()]
        t = Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=0, priority=1)])
        s = TransactionSystem(transactions=[t], platforms=platforms)
        assert s.utilization(0) == pytest.approx(0.2)

    def test_iteration_and_indexing(self):
        s = simple_system()
        assert s[0].name == "G1"
        assert [tr.name for tr in s] == ["G1", "G2"]

    def test_hyperperiod_hint_positive(self):
        assert simple_system().hyperperiod_hint() >= 20.0


class TestCopy:
    def test_copy_with_jitters_reset(self):
        s = simple_system()
        s.transactions[0].tasks[0].jitter = 4.0
        s.transactions[0].tasks[0].offset = 2.0
        c = s.copy_with_jitters_reset()
        assert c.transactions[0].tasks[0].jitter == 0.0
        assert c.transactions[0].tasks[0].offset == 0.0
        # original untouched
        assert s.transactions[0].tasks[0].jitter == 4.0
