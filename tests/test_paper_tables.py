"""Tests for the paper-table renderers and reference data."""

import pytest

from repro.analysis import analyze
from repro.paper import (
    paper_table1_rows,
    paper_table2_rows,
    paper_table3_rows,
    render_table1,
    render_table2,
    render_table3,
    sensor_fusion_system,
)


@pytest.fixture(scope="module")
def traced():
    return analyze(sensor_fusion_system(), trace=True)


class TestReferenceData:
    def test_table1_shape(self):
        rows = paper_table1_rows()
        assert len(rows) == 7
        assert rows[3]["phi_min"] == 5.0

    def test_table2_shape(self):
        rows = paper_table2_rows()
        assert len(rows) == 3
        assert rows[2]["alpha"] == 0.2

    def test_table3_shape(self):
        rows = paper_table3_rows()
        assert len(rows) == 4
        assert rows[3]["R"][-1] == 39  # the published (erroneous) value


class TestSystemMatchesTables:
    def test_platform_triples_match_table2(self):
        system = sensor_fusion_system()
        for platform, row in zip(system.platforms, paper_table2_rows()):
            assert platform.rate == row["alpha"]
            assert platform.delay == row["delta"]
            assert platform.burstiness == row["beta"]

    def test_task_parameters_match_table1(self):
        system = sensor_fusion_system()
        rows = iter(paper_table1_rows())
        for tr in system.transactions:
            for task in tr.tasks:
                row = next(rows)
                assert task.wcet == row["wcet"]
                assert task.bcet == row["bcet"]
                assert tr.period == row["period"]
                assert task.priority == row["priority"]

    def test_derived_offsets_match_table1(self, traced):
        for j, row in enumerate(paper_table1_rows()[:4]):
            assert traced.tasks[(0, j)].offset == pytest.approx(row["phi_min"])


class TestRenderers:
    def test_render_table1(self, traced):
        out = render_table1(sensor_fusion_system(), traced)
        assert "tau_1_4" in out
        assert "phi_min" in out

    def test_render_table2(self):
        out = render_table2(sensor_fusion_system())
        assert "Pi3" in out
        assert "0.2" in out

    def test_render_table3_layout(self, traced):
        out = render_table3(traced)
        lines = out.splitlines()
        assert any("J(0)" in ln and "R(3)" in ln for ln in lines)
        # tau_1_1 row converges after iteration 1: later cells blank.
        row11 = next(ln for ln in lines if "init" in ln)
        assert "12" in row11

    def test_render_table3_requires_trace(self):
        res = analyze(sensor_fusion_system(), trace=False)
        with pytest.raises(ValueError, match="trace=True"):
            render_table3(res)
