"""Tests for the compositional (per-component) baseline tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.analysis.compositional import (
    LocalTask,
    dbf,
    edf_component_schedulable,
    fp_component_schedulable,
    rbf,
)
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.periodic_server import PeriodicServer


class TestLocalTask:
    def test_deadline_defaults_to_period(self):
        assert LocalTask(wcet=1.0, period=5.0).deadline == 5.0

    def test_rejects_unconstrained_deadline(self):
        with pytest.raises(ValueError, match="deadline <= period"):
            LocalTask(wcet=1.0, period=5.0, deadline=7.0)


class TestDbf:
    def test_steps_at_deadlines(self):
        tasks = [LocalTask(wcet=2.0, period=10.0, deadline=6.0)]
        assert dbf(tasks, 5.9) == 0.0
        assert dbf(tasks, 6.0) == 2.0
        assert dbf(tasks, 15.9) == 2.0
        assert dbf(tasks, 16.0) == 4.0

    def test_additive_over_tasks(self):
        a = [LocalTask(wcet=1.0, period=4.0)]
        b = [LocalTask(wcet=2.0, period=6.0)]
        for t in (0.0, 4.0, 6.0, 12.0, 24.0):
            assert dbf(a + b, t) == dbf(a, t) + dbf(b, t)

    @given(st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, t):
        tasks = [
            LocalTask(wcet=1.0, period=7.0, deadline=5.0),
            LocalTask(wcet=2.0, period=11.0),
        ]
        assert dbf(tasks, t) <= dbf(tasks, t + 1.0) + 1e-12


class TestRbf:
    def test_includes_own_wcet_and_hp_releases(self):
        hi = LocalTask(wcet=1.0, period=4.0, priority=2)
        lo = LocalTask(wcet=2.0, period=10.0, priority=1)
        tasks = [hi, lo]
        assert rbf(tasks, lo, 0.5) == pytest.approx(3.0)   # 2 + 1
        assert rbf(tasks, lo, 4.5) == pytest.approx(4.0)   # 2 + 2*1

    def test_lower_priority_does_not_contribute(self):
        hi = LocalTask(wcet=1.0, period=4.0, priority=2)
        lo = LocalTask(wcet=2.0, period=10.0, priority=1)
        assert rbf([hi, lo], hi, 3.0) == pytest.approx(1.0)


class TestEdfTest:
    def test_dedicated_platform_full_utilization(self):
        # EDF on a dedicated CPU is feasible up to U = 1 (implicit deadlines).
        tasks = [
            LocalTask(wcet=2.0, period=4.0),
            LocalTask(wcet=3.0, period=6.0),
        ]
        assert edf_component_schedulable(tasks, DedicatedPlatform())

    def test_overload_rejected(self):
        tasks = [
            LocalTask(wcet=3.0, period=4.0),
            LocalTask(wcet=3.0, period=6.0),
        ]
        assert not edf_component_schedulable(tasks, DedicatedPlatform())

    def test_periodic_server_blackout_matters(self):
        # U = 0.25 fits the rate 0.4, but the tight deadline collides with
        # the 2*(P-Q) = 6 blackout.
        server = PeriodicServer(2.0, 5.0)
        tight = [LocalTask(wcet=1.0, period=20.0, deadline=5.0)]
        loose = [LocalTask(wcet=1.0, period=20.0, deadline=12.0)]
        assert not edf_component_schedulable(tight, server)
        assert edf_component_schedulable(loose, server)

    def test_empty_component(self):
        assert edf_component_schedulable([], DedicatedPlatform())

    def test_exact_supply_beats_linear_bound(self):
        """Using zmin directly admits components the linear bound rejects."""
        server = PeriodicServer(2.0, 5.0)
        linear = LinearSupplyPlatform(
            server.rate, server.delay, server.burstiness
        )
        # Demand sits exactly on a zmin plateau corner above the line.
        tasks = [LocalTask(wcet=2.0, period=20.0, deadline=8.0)]
        assert edf_component_schedulable(tasks, server)
        # zmin(8) = 2 but alpha*(8 - 6) = 0.8 < 2: linear bound refuses.
        assert not edf_component_schedulable(tasks, linear)


class TestFpTest:
    def test_classic_feasible_set(self):
        tasks = [
            LocalTask(wcet=1.0, period=4.0, priority=3),
            LocalTask(wcet=2.0, period=6.0, priority=2),
            LocalTask(wcet=3.0, period=12.0, priority=1),
        ]
        assert fp_component_schedulable(tasks, DedicatedPlatform())

    def test_infeasible_set(self):
        tasks = [
            LocalTask(wcet=2.0, period=4.0, priority=2),
            LocalTask(wcet=3.0, period=6.0, priority=1),
        ]
        assert not fp_component_schedulable(tasks, DedicatedPlatform())

    def test_agrees_with_holistic_on_independent_components(self):
        """E13 property: singleton transactions == per-component test."""
        specs = [(1.0, 15.0, 3), (1.0, 15.0, 2)]
        platform = LinearSupplyPlatform(0.4, 1.0, 0.0)
        local = [
            LocalTask(wcet=c, period=p, priority=prio)
            for c, p, prio in specs
        ]
        txns = [
            Transaction(period=p, tasks=[Task(wcet=c, platform=0, priority=prio)])
            for c, p, prio in specs
        ]
        system = TransactionSystem(transactions=[*txns], platforms=[platform])
        holistic = analyze(system)
        assert fp_component_schedulable(local, platform) == holistic.schedulable

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_never_accepts_what_holistic_rejects(self, seed):
        """On independent tasks with the same linear supply information the
        two tests agree; with exact zmin the compositional test can only be
        *more* permissive."""
        np = pytest.importorskip("numpy")

        rng = np.random.default_rng(seed)
        platform = LinearSupplyPlatform(
            rate=float(rng.uniform(0.3, 0.9)),
            delay=float(rng.uniform(0.0, 3.0)),
        )
        n = int(rng.integers(1, 4))
        specs = []
        for k in range(n):
            period = float(rng.uniform(10.0, 100.0))
            wcet = float(rng.uniform(0.05, 0.15)) * period * platform.rate
            specs.append((wcet, period, n - k))
        local = [LocalTask(wcet=c, period=p, priority=q) for c, p, q in specs]
        txns = [
            Transaction(period=p, tasks=[Task(wcet=c, platform=0, priority=q)])
            for c, p, q in specs
        ]
        holistic = analyze(TransactionSystem(transactions=txns, platforms=[platform]))
        if holistic.schedulable:
            assert fp_component_schedulable(local, platform)
