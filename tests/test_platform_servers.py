"""Unit tests for reservation-server variants."""

import pytest

from repro.platforms.periodic_server import PeriodicServer
from repro.platforms.servers import (
    CBSServer,
    DeferrableServer,
    PollingServer,
    ReservationServer,
)


class TestReservationServer:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown reservation policy"):
            ReservationServer(1.0, 4.0, "magic")

    @pytest.mark.parametrize("cls,policy", [
        (PollingServer, "polling"),
        (DeferrableServer, "deferrable"),
        (CBSServer, "cbs"),
    ])
    def test_policy_tags(self, cls, policy):
        s = cls(1.0, 4.0)
        assert s.policy == policy

    @pytest.mark.parametrize("cls", [PollingServer, DeferrableServer, CBSServer])
    def test_supply_envelope_matches_periodic(self, cls):
        """All reservation policies share the periodic-server envelope."""
        s = cls(2.0, 5.0)
        ref = PeriodicServer(2.0, 5.0)
        assert s.triple() == ref.triple()
        for t in (0.0, 1.0, 6.0, 7.5, 13.0):
            assert s.zmin(t) == ref.zmin(t)
            assert s.zmax(t) == ref.zmax(t)

    def test_is_a_periodic_server(self):
        assert isinstance(CBSServer(1.0, 3.0), PeriodicServer)

    def test_repr_mentions_policy(self):
        assert "deferrable" in repr(DeferrableServer(1.0, 3.0))
