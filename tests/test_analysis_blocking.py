"""Tests for resource blocking terms (SRP/PCP and non-preemptive)."""

import pytest

from repro.analysis import analyze
from repro.analysis.blocking import (
    CriticalSection,
    ResourceSpec,
    assign_ceiling_blocking,
    assign_nonpreemptive_blocking,
    resource_ceilings,
)
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform


def three_task_system(platform=None):
    """Priorities 3 > 2 > 1, all on one platform."""
    txns = [
        Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=0, priority=3)], name="hi"),
        Transaction(period=20.0, tasks=[Task(wcet=2.0, platform=0, priority=2)], name="mid"),
        Transaction(period=40.0, tasks=[Task(wcet=4.0, platform=0, priority=1)], name="lo"),
    ]
    return TransactionSystem(
        transactions=txns, platforms=[platform or DedicatedPlatform()]
    )


class TestSpecValidation:
    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            CriticalSection(0, 0, "r", 0.0)

    def test_rejects_bad_indices(self):
        s = three_task_system()
        with pytest.raises(ValueError, match="transaction"):
            ResourceSpec().add(9, 0, "r", 0.5).validate(s)
        with pytest.raises(ValueError, match="task"):
            ResourceSpec().add(0, 5, "r", 0.5).validate(s)

    def test_rejects_section_longer_than_wcet(self):
        s = three_task_system()
        with pytest.raises(ValueError, match="exceeds"):
            ResourceSpec().add(0, 0, "r", 5.0).validate(s)

    def test_rejects_cross_platform_resource(self):
        txns = [
            Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=0, priority=1)]),
            Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=1, priority=1)]),
        ]
        s = TransactionSystem(
            transactions=txns,
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        spec = ResourceSpec().add(0, 0, "shared", 0.5).add(1, 0, "shared", 0.5)
        with pytest.raises(ValueError, match="cross-platform"):
            spec.validate(s)


class TestCeilings:
    def test_ceiling_is_max_accessor_priority(self):
        s = three_task_system()
        spec = ResourceSpec().add(0, 0, "r", 0.5).add(2, 0, "r", 1.0)
        assert resource_ceilings(spec, s) == {"r": 3}


class TestCeilingBlocking:
    def test_hi_blocked_by_lo_through_shared_resource(self):
        s = three_task_system()
        # hi and lo share "r"; lo holds it for 1.0 cycles.
        spec = ResourceSpec().add(0, 0, "r", 0.5).add(2, 0, "r", 1.0)
        assign_ceiling_blocking(s, spec)
        assert s.transactions[0].tasks[0].blocking == pytest.approx(1.0)
        # mid does not use r but has priority below its ceiling: classic
        # PCP indirect blocking applies.
        assert s.transactions[1].tasks[0].blocking == pytest.approx(1.0)
        # lo is the lowest priority: nothing can block it.
        assert s.transactions[2].tasks[0].blocking == 0.0

    def test_low_ceiling_resource_does_not_block_high(self):
        s = three_task_system()
        # Only mid and lo share the resource: ceiling 2 < priority 3.
        spec = ResourceSpec().add(1, 0, "r", 0.5).add(2, 0, "r", 1.5)
        assign_ceiling_blocking(s, spec)
        assert s.transactions[0].tasks[0].blocking == 0.0
        assert s.transactions[1].tasks[0].blocking == pytest.approx(1.5)

    def test_blocking_scaled_by_platform_rate(self):
        s = three_task_system(platform=LinearSupplyPlatform(0.5))
        spec = ResourceSpec().add(0, 0, "r", 0.5).add(2, 0, "r", 1.0)
        assign_ceiling_blocking(s, spec)
        assert s.transactions[0].tasks[0].blocking == pytest.approx(2.0)

    def test_blocking_increases_response_times(self):
        plain = three_task_system()
        blocked = three_task_system()
        spec = ResourceSpec().add(0, 0, "r", 0.5).add(2, 0, "r", 1.0)
        assign_ceiling_blocking(blocked, spec)
        r_plain = analyze(plain)
        r_blocked = analyze(blocked)
        assert r_blocked.wcrt(0, 0) == pytest.approx(r_plain.wcrt(0, 0) + 1.0)


class TestNonPreemptiveBlocking:
    def test_longest_lower_section_blocks(self):
        s = three_task_system()
        assign_nonpreemptive_blocking(
            s, {(1, 0): 0.5, (2, 0): 2.0}
        )
        assert s.transactions[0].tasks[0].blocking == pytest.approx(2.0)
        assert s.transactions[1].tasks[0].blocking == pytest.approx(2.0)
        assert s.transactions[2].tasks[0].blocking == 0.0

    def test_rejects_section_beyond_wcet(self):
        s = three_task_system()
        with pytest.raises(ValueError):
            assign_nonpreemptive_blocking(s, {(0, 0): 2.0})

    def test_other_platform_does_not_block(self):
        txns = [
            Transaction(period=10.0, tasks=[Task(wcet=1.0, platform=0, priority=2)]),
            Transaction(period=10.0, tasks=[Task(wcet=4.0, platform=1, priority=1)]),
        ]
        s = TransactionSystem(
            transactions=txns,
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        assign_nonpreemptive_blocking(s, {(1, 0): 3.0})
        assert s.transactions[0].tasks[0].blocking == 0.0
