"""Tests for platform-parameter optimization (the paper's future work)."""

import math

import pytest

from repro.analysis import analyze
from repro.opt import (
    minimize_bandwidth,
    pareto_front,
    rate_delay_frontier,
    server_for_triple,
    triple_for_server,
)
from repro.paper import sensor_fusion_system


class TestServerParams:
    def test_round_trip(self):
        srv = server_for_triple(0.4, 1.0)
        a, d, b = triple_for_server(srv)
        assert a == pytest.approx(0.4)
        assert d == pytest.approx(1.0)

    def test_paper_pi3(self):
        srv = server_for_triple(0.2, 2.0)
        assert srv.period == pytest.approx(1.25)
        assert srv.budget == pytest.approx(0.25)

    def test_rejects_full_rate(self):
        with pytest.raises(ValueError):
            server_for_triple(1.0, 1.0)

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            server_for_triple(0.5, 0.0)


class TestMinimizeBandwidth:
    @pytest.fixture(scope="class")
    def design(self):
        return minimize_bandwidth(sensor_fusion_system(), rate_tol=5e-3)

    def test_feasible(self, design):
        assert design.feasible

    def test_strict_improvement(self, design):
        assert design.total_bandwidth < design.initial_bandwidth
        assert design.savings > 0.1  # >10% savings on the paper example

    def test_designed_system_schedulable(self, design):
        system = design.designed_system(sensor_fusion_system())
        assert analyze(system).schedulable

    def test_rates_never_increase(self, design):
        original = sensor_fusion_system().platforms
        for new, old in zip(design.platforms, original):
            assert new.rate <= old.rate + 1e-9

    def test_rates_above_utilization_floor(self, design):
        system = design.designed_system(sensor_fusion_system())
        for m in range(len(system.platforms)):
            assert system.utilization(m) <= 1.0 + 1e-9

    def test_infeasible_input_reported(self):
        from repro.model.system import TransactionSystem
        from repro.model.task import Task
        from repro.model.transaction import Transaction
        from repro.platforms.linear import LinearSupplyPlatform

        t = Transaction(period=10.0, tasks=[Task(wcet=9.0, platform=0, priority=1)])
        s = TransactionSystem(
            transactions=[t], platforms=[LinearSupplyPlatform(0.5, 0.0, 0.0)]
        )
        design = minimize_bandwidth(s)
        assert not design.feasible
        assert design.total_bandwidth == design.initial_bandwidth

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="one entry per platform"):
            minimize_bandwidth(sensor_fusion_system(), delays=[1.0])


class TestPareto:
    def test_front_filters_dominated(self):
        pts = [(1.0, 5.0), (2.0, 3.0), (3.0, 3.0), (4.0, 1.0), (2.5, 6.0)]
        front = pareto_front(pts)
        assert front == [(1.0, 5.0), (2.0, 3.0), (4.0, 1.0)]

    def test_front_of_empty(self):
        assert pareto_front([]) == []

    def test_rate_delay_frontier_monotone(self):
        system = sensor_fusion_system()
        frontier = rate_delay_frontier(system, 2, [0.5, 2.0, 6.0], rate_tol=5e-3)
        rates = [r for _, r in frontier]
        # Larger permissible delay never *reduces* the required rate.
        assert all(b >= a - 5e-3 for a, b in zip(rates, rates[1:]))

    def test_frontier_points_feasible(self):
        from repro.model.system import TransactionSystem
        from repro.platforms.linear import LinearSupplyPlatform

        system = sensor_fusion_system()
        frontier = rate_delay_frontier(system, 2, [2.0], rate_tol=2e-3)
        delay, rate = frontier[0]
        assert not math.isinf(rate)
        platforms = list(system.platforms)
        platforms[2] = LinearSupplyPlatform(rate + 2e-3, delay, 1.0)
        assert analyze(
            TransactionSystem(transactions=system.transactions, platforms=platforms)
        ).schedulable

    def test_frontier_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            rate_delay_frontier(sensor_fusion_system(), 2, [-1.0])
