"""CI perf smoke and schema checks for ``BENCH_campaign.json``.

Two layers of protection for the throughput numbers the ROADMAP tracks:

* **Schema** -- the committed bench JSON must keep the structure the
  campaign benchmark writes (so downstream tooling and the next re-anchor
  can rely on it), and the recorded speedups must meet the ISSUE 2
  acceptance floor plus the ISSUE 3 distributed-execution blocks
  (``sharding`` with its >= 1.8x aggregate pin, ``collection``,
  ``wide_view``), the ISSUE 4 ``verdict_mode`` block (verdict-mode
  pipeline >= 2.5x the exact pipeline on the reference sweep, with the
  benchmark itself asserting >= 3x at measurement time), and the ISSUE 6
  ``result_store`` block (cold-vs-warmed store accounting; the speedup
  ratio is disk-bound and deliberately not gated).
* **Perf smoke** -- a few-second re-measurement of the reference sweep
  that fails when systems/sec regresses more than 30% below the recorded
  reference.  Timed best-of-3 to damp container throughput jitter.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.batch import Campaign, CampaignSpec, linspace_levels

ROOT = Path(__file__).resolve().parent.parent
BENCH = ROOT / "BENCH_campaign.json"

#: Fields every run entry of the bench JSON must carry.
RUN_FIELDS = {
    "method",
    "warm_start",
    "kernel",
    "scheduler",
    "systems",
    "wall_time_s",
    "systems_per_second",
    "evaluations_total",
    "outer_iterations_total",
    "task_solves",
    "task_skips",
}

SPEEDUP_FIELDS = {
    "vs_pr1_recorded",
    "vs_pr1_cost_model_inprocess",
    "vs_pr1_calibrated",
    "dirty_set_evaluations_saved",
    "warm_vs_cold_evaluations",
    "gauss_seidel_vs_jacobi_evaluations",
}

#: Allowed regression below the recorded reference throughput.
REGRESSION_MARGIN = 0.30


@pytest.fixture(scope="module")
def payload() -> dict:
    return json.loads(BENCH.read_text())


#: Fields of the ISSUE 3 sharding block.
SHARDING_FIELDS = {
    "shards",
    "unsharded_wall_s",
    "shard_wall_s",
    "shard_systems",
    "aggregate_systems_per_second",
    "aggregate_speedup",
}

#: Per-mode fields of the ISSUE 3 collection block.
COLLECTION_MODE_FIELDS = {
    "wall_time_s",
    "systems_per_second",
    "shm_records",
    "shm_overflow",
}


#: Fields of the ISSUE 4 verdict_mode block.
VERDICT_EXACT_FIELDS = {"wall_time_s", "systems_per_second",
                        "evaluations_total"}
VERDICT_FIELDS = VERDICT_EXACT_FIELDS | {
    "cells", "inferred_cells", "solved_cells", "ceiling_exits",
    "prefilter_classified",
}

#: Committed floor for the recorded verdict-vs-exact speedup; the
#: benchmark asserts the full >= 3x at measurement time, the schema pin
#: keeps a margin for cross-machine drift of the committed numbers.
VERDICT_SPEEDUP_FLOOR = 2.5


class TestBenchSchema:
    def test_top_level_keys(self, payload):
        assert {
            "description", "sweep", "pr1_reference", "runs", "speedups",
            "sharding", "collection", "wide_view", "verdict_mode",
            "result_store",
        } <= set(payload)

    def test_sweep_block(self, payload):
        sweep = payload["sweep"]
        assert {"levels", "systems_per_cell", "base"} <= set(sweep)
        assert sweep["systems_per_cell"] >= 1
        assert len(sweep["levels"]) >= 2

    def test_levels_on_stable_decimal_grid(self, payload):
        """The ISSUE 2 float-drift fix: no 0.6000000000000001 keys."""
        levels = payload["sweep"]["levels"]
        assert levels == [round(v, 10) for v in levels]
        assert levels == list(
            linspace_levels(levels[0], levels[-1], len(levels))
        )

    def test_runs_schema(self, payload):
        runs = payload["runs"]
        assert "gs_warm_cached" in runs
        assert "pr1_cost_model_warm" in runs
        for name, run in runs.items():
            missing = RUN_FIELDS - set(run)
            assert not missing, f"{name} lacks {sorted(missing)}"
            assert run["systems"] > 0
            assert run["wall_time_s"] > 0
            assert run["systems_per_second"] == pytest.approx(
                run["systems"] / run["wall_time_s"], rel=1e-6
            )

    def test_speedups_schema(self, payload):
        assert SPEEDUP_FIELDS <= set(payload["speedups"])

    def test_recorded_speedup_meets_acceptance(self, payload):
        """The ISSUE 2 acceptance floor, pinned on the committed numbers."""
        assert payload["speedups"]["vs_pr1_calibrated"] >= 2.0
        assert payload["speedups"]["dirty_set_evaluations_saved"] > 0.0

    def test_pr1_reference_block(self, payload):
        ref = payload["pr1_reference"]
        assert ref["systems_per_second"] == pytest.approx(350.96, abs=0.01)
        assert ref["evaluations_total"] == 34392

    def test_sharding_block(self, payload):
        """ISSUE 3 acceptance: the recorded 2-shard reference sweep must
        deliver >= 1.8x aggregate throughput over the single-host run."""
        sharding = payload["sharding"]
        missing = SHARDING_FIELDS - set(sharding)
        assert not missing, sorted(missing)
        assert sharding["shards"] == 2
        assert len(sharding["shard_wall_s"]) == 2
        assert all(w > 0 for w in sharding["shard_wall_s"])
        # Aggregate throughput models two hosts running side by side:
        # total systems / slowest shard wall.
        assert sharding["aggregate_speedup"] == pytest.approx(
            sharding["unsharded_wall_s"] / max(sharding["shard_wall_s"]),
            rel=1e-6,
        )
        assert sharding["aggregate_speedup"] >= 1.8

    def test_collection_block(self, payload):
        collection = payload["collection"]
        assert {"pickle", "shm", "shm_vs_pickle"} <= set(collection)
        for mode in ("pickle", "shm"):
            missing = COLLECTION_MODE_FIELDS - set(collection[mode])
            assert not missing, f"{mode} lacks {sorted(missing)}"
            assert collection[mode]["wall_time_s"] > 0
        # The shm run really went through the ring, not the fallback.
        assert collection["shm"]["shm_records"] > 0
        assert collection["pickle"]["shm_records"] == 0
        assert collection["shm_vs_pickle"] > 0

    def test_verdict_mode_block(self, payload):
        """ISSUE 4 acceptance: the verdict-mode pipeline on the reference
        sweep, recorded against the exact pipeline, with the >= 2.5x
        schema floor (the benchmark gates >= 3x when it runs)."""
        block = payload["verdict_mode"]
        assert {"exact", "verdict", "verdict_vs_exact"} <= set(block)
        assert VERDICT_EXACT_FIELDS <= set(block["exact"])
        assert VERDICT_FIELDS <= set(block["verdict"])
        verdict = block["verdict"]
        assert verdict["cells"] == (
            verdict["solved_cells"] + verdict["inferred_cells"]
        )
        # The pruning really engaged: a majority of the sweep's cells were
        # inferred from monotone level pruning, not solved.
        assert verdict["inferred_cells"] > 0
        # Early exits engaged too.
        assert verdict["ceiling_exits"] > 0
        # And the whole pipeline pays off end to end.
        assert block["verdict_vs_exact"] == pytest.approx(
            block["exact"]["wall_time_s"] / verdict["wall_time_s"], rel=1e-6
        )
        assert block["verdict_vs_exact"] >= VERDICT_SPEEDUP_FLOOR

    def test_result_store_block(self, payload):
        """ISSUE 6: cold-vs-warmed store on the reference sweep.  The
        ratio itself is disk-latency-bound, so only the accounting
        invariants are pinned, not a speedup floor."""
        block = payload["result_store"]
        assert {"cold", "warm", "warm_vs_cold", "entries",
                "store_bytes"} <= set(block)
        assert block["cold"]["store_misses"] == block["entries"]
        assert block["warm"]["store_hits"] == block["entries"]
        assert block["entries"] > 0
        assert block["store_bytes"] > 0
        for leg in ("cold", "warm"):
            assert block[leg]["wall_time_s"] > 0
            assert block[leg]["systems_per_second"] > 0

    def test_wide_view_block(self, payload):
        wide = payload["wide_view"]
        assert {"scalar", "vector", "vector_vs_scalar"} <= set(wide)
        for kernel in ("scalar", "vector"):
            assert wide[kernel]["wall_time_s"] > 0
            assert wide[kernel]["systems_per_second"] > 0
        # Identical fixed points: the kernels may differ only in speed.
        assert wide["scalar"]["evaluations_total"] == \
            wide["vector"]["evaluations_total"]
        # The ROADMAP claim behind the preset: on wide views the vector
        # kernel wins outright.
        assert wide["vector_vs_scalar"] > 1.0


class TestPerfSmoke:
    def test_throughput_within_margin_of_reference(self, payload):
        """Re-run the recorded sweep; fail on a >30% systems/sec drop."""
        sweep = payload["sweep"]
        base = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in sweep["base"].items()
        }
        spec = CampaignSpec(
            grid={"utilization": tuple(sweep["levels"])},
            base=base,
            methods=("gauss_seidel",),
            systems_per_cell=sweep["systems_per_cell"],
            seed=3,
            warm_start=True,
        )
        campaign = Campaign(spec)
        campaign.run(workers=1)  # warm the interpreter and caches
        best = None
        for _ in range(3):
            t0 = time.perf_counter()
            result = campaign.run(workers=1)
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        measured = result.n_systems / best
        reference = payload["runs"]["gs_warm_cached"]["systems_per_second"]
        floor = (1.0 - REGRESSION_MARGIN) * reference
        assert measured >= floor, (
            f"campaign throughput regressed: {measured:.1f} systems/s "
            f"vs recorded {reference:.1f} (floor {floor:.1f})"
        )
