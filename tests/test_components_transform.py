"""Unit tests for the Sec. 2.4 component-to-transaction transform."""

import pytest

from repro.components.assembly import SystemAssembly
from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.scheduler import EDFScheduler
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.components.validation import AssemblyError
from repro.paper import sensor_fusion_components, sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform
from repro.platforms.network import Message, NetworkLinkPlatform


class TestPaperExample:
    def test_transaction_count(self):
        system = sensor_fusion_components().derive_transactions()
        assert len(system.transactions) == 4

    def test_gamma1_chain_structure(self):
        system = sensor_fusion_components().derive_transactions()
        g1 = next(tr for tr in system if "Integrator" in tr.name)
        names = [t.meta.get("step") for t in g1.tasks]
        assert names == ["init", "serve_read", "serve_read", "compute"]
        platforms = [t.platform for t in g1.tasks]
        assert platforms == [2, 0, 1, 2]  # Pi3, Pi1, Pi2, Pi3

    def test_priority_override_applied(self):
        system = sensor_fusion_components().derive_transactions()
        g1 = next(tr for tr in system if "Integrator" in tr.name)
        assert g1.tasks[0].priority == 2  # init at thread priority
        assert g1.tasks[3].priority == 3  # compute overridden to 3

    def test_equivalent_to_direct_system(self):
        """Component-derived and hand-built systems analyze identically."""
        from repro.analysis import analyze

        derived = sensor_fusion_components().derive_transactions()
        direct = sensor_fusion_system()
        ra = analyze(derived)
        rb = analyze(direct)
        assert sorted(ra.transaction_wcrt) == pytest.approx(
            sorted(rb.transaction_wcrt)
        )


def minimal_assembly(*, edf=False):
    comp = Component(
        name="C",
        threads=[
            PeriodicThread(
                name="t", priority=1, period=10.0, body=[TaskStep("a", wcet=1.0)]
            )
        ],
        scheduler=EDFScheduler() if edf else Component.__dataclass_fields__["scheduler"].default_factory(),
    )
    asm = SystemAssembly(name="m")
    asm.add_instance("I", comp)
    asm.add_platform("P", DedicatedPlatform())
    asm.place("I", platform="P")
    return asm


class TestTransformMechanics:
    def test_task_metadata(self):
        system = minimal_assembly().derive_transactions()
        task = system.transactions[0].tasks[0]
        assert task.meta["instance"] == "I"
        assert task.meta["kind"] == "code"
        assert task.name == "I.t.a"

    def test_edf_rejected_for_analysis(self):
        asm = minimal_assembly(edf=True)
        with pytest.raises(AssemblyError, match="edf"):
            asm.derive_transactions()

    def test_edf_allowed_for_simulation(self):
        asm = minimal_assembly(edf=True)
        system = asm.derive_transactions(require_analyzable=False)
        assert len(system.transactions) == 1

    def test_validation_failure_aborts(self):
        asm = minimal_assembly()
        del asm.placements["I"]
        with pytest.raises(AssemblyError, match="validation failed"):
            asm.derive_transactions()

    def test_validation_can_be_skipped(self):
        # With validation off, the transform hits the missing placement itself.
        asm = minimal_assembly()
        del asm.placements["I"]
        with pytest.raises(KeyError):
            asm.derive_transactions(validate=False)


class TestMessageInsertion:
    def build(self):
        srv = Component(
            name="S",
            provided=[ProvidedMethod("serve", mit=10.0)],
            threads=[
                EventThread(
                    name="h", realizes="serve", priority=2,
                    body=[TaskStep("work", wcet=1.0)],
                )
            ],
        )
        cl = Component(
            name="C",
            required=[RequiredMethod("svc", mit=50.0)],
            threads=[
                PeriodicThread(
                    name="main", priority=1, period=50.0,
                    body=[TaskStep("pre", wcet=1.0), CallStep("svc"),
                          TaskStep("post", wcet=1.0)],
                )
            ],
        )
        asm = SystemAssembly(name="net")
        asm.add_instance("S", srv)
        asm.add_instance("C", cl)
        asm.add_platform("PC", DedicatedPlatform())
        asm.add_platform("PS", DedicatedPlatform())
        asm.add_platform(
            "NET", NetworkLinkPlatform(100.0, frame_overhead=4.0, name="bus")
        )
        asm.place("C", platform="PC")
        asm.place("S", platform="PS")
        asm.bind(
            "C", "svc", "S", "serve",
            request=Message(payload=16.0, priority=3),
            reply=Message(payload=8.0, priority=3),
            network="NET",
        )
        return asm

    def test_message_tasks_inserted_in_order(self):
        system = self.build().derive_transactions()
        tr = system.transactions[0]
        kinds = [t.meta.get("kind") for t in tr.tasks]
        assert kinds == ["code", "message", "code", "message", "code"]
        assert tr.tasks[1].meta["direction"] == "request"
        assert tr.tasks[3].meta["direction"] == "reply"

    def test_message_task_parameters(self):
        system = self.build().derive_transactions()
        req = system.transactions[0].tasks[1]
        assert req.platform == 2  # the NET platform index
        assert req.wcet == 20.0  # 16 payload + 4 overhead
        assert req.priority == 3

    def test_network_platform_must_be_a_link(self):
        asm = self.build()
        # Rebind the network to a CPU platform: transform must refuse.
        from repro.components.assembly import Binding

        b = asm.bindings[("C", "svc")]
        asm.bindings[("C", "svc")] = Binding(
            caller=b.caller, required=b.required, callee=b.callee,
            provided=b.provided, request=b.request, reply=b.reply,
            network="PC",
        )
        with pytest.raises(AssemblyError, match="not a NetworkLinkPlatform"):
            asm.derive_transactions()

    def test_network_system_analyzes(self):
        from repro.analysis import analyze

        system = self.build().derive_transactions()
        result = analyze(system)
        assert result.schedulable


class TestRecursiveExpansion:
    def test_three_level_chain(self):
        leaf = Component(
            name="Leaf",
            provided=[ProvidedMethod("pl", mit=1.0)],
            threads=[
                EventThread(
                    name="h", realizes="pl", priority=1,
                    body=[TaskStep("leafwork", wcet=0.5)],
                )
            ],
        )
        mid = Component(
            name="Mid",
            provided=[ProvidedMethod("pm", mit=1.0)],
            required=[RequiredMethod("rl", mit=1.0)],
            threads=[
                EventThread(
                    name="h", realizes="pm", priority=1,
                    body=[TaskStep("pre", wcet=0.5), CallStep("rl"),
                          TaskStep("post", wcet=0.5)],
                )
            ],
        )
        top = Component(
            name="Top",
            required=[RequiredMethod("rm", mit=1.0)],
            threads=[
                PeriodicThread(
                    name="main", priority=1, period=100.0,
                    body=[CallStep("rm")],
                )
            ],
        )
        asm = SystemAssembly()
        for n, c in [("L", leaf), ("M", mid), ("T", top)]:
            asm.add_instance(n, c)
            asm.add_platform(f"P{n}", DedicatedPlatform())
            asm.place(n, platform=f"P{n}")
        asm.bind("T", "rm", "M", "pm")
        asm.bind("M", "rl", "L", "pl")
        system = asm.derive_transactions()
        steps = [t.meta["step"] for t in system.transactions[0].tasks]
        assert steps == ["pre", "leafwork", "post"]
        platforms = [t.platform for t in system.transactions[0].tasks]
        # Mid on platform 1, Leaf on 0 (registration order L, M, T).
        assert platforms == [1, 0, 1]
