"""Unit tests for the periodic server, including brute-force cross-checks.

The closed-form ``zmin``/``zmax`` are verified against a sliding-window
computation over explicitly constructed worst/best-case supply patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.platforms.periodic_server import PeriodicServer


def brute_force_zmin(q, p, t, resolution=2000):
    """Min supply over windows of length t sliding across the worst pattern.

    Worst pattern: blackout handled implicitly by sliding over a long
    schedule where each period's quantum sits at an arbitrary place; the
    adversary places quanta at period starts, so a window starting right
    after a quantum sees the 2(P-Q) blackout.
    """
    horizon = 12 * p + t
    # Supply indicator for quanta at the START of each period.
    def supplied(a, b):
        """Cycles delivered in [a, b) with quanta at [kP, kP+Q)."""
        total = 0.0
        k0 = int(np.floor(a / p)) - 1
        k1 = int(np.ceil(b / p)) + 1
        for k in range(k0, k1 + 1):
            s, e = k * p, k * p + q
            total += max(0.0, min(b, e) - max(a, s))
        return total

    starts = np.linspace(0.0, horizon - t, resolution)
    return min(supplied(a, a + t) for a in starts)


class TestConstruction:
    def test_valid(self):
        s = PeriodicServer(2.0, 5.0)
        assert s.rate == pytest.approx(0.4)
        assert s.delay == pytest.approx(6.0)
        assert s.burstiness == pytest.approx(2.0 * 2.0 * 3.0 / 5.0)

    def test_rejects_budget_above_period(self):
        with pytest.raises(ValueError):
            PeriodicServer(6.0, 5.0)

    def test_full_budget_is_dedicated(self):
        s = PeriodicServer(5.0, 5.0)
        assert s.delay == 0.0
        assert s.burstiness == 0.0
        assert s.zmin(3.0) == pytest.approx(3.0)


class TestZminClosedForm:
    def test_blackout(self):
        s = PeriodicServer(2.0, 5.0)  # blackout 2*(5-2) = 6
        assert s.zmin(6.0) == 0.0
        assert s.zmin(5.9) == 0.0
        assert s.zmin(7.0) == pytest.approx(1.0)

    def test_one_full_quantum(self):
        s = PeriodicServer(2.0, 5.0)
        assert s.zmin(8.0) == pytest.approx(2.0)
        assert s.zmin(9.0) == pytest.approx(2.0)  # gap after the quantum

    def test_periodicity(self):
        s = PeriodicServer(2.0, 5.0)
        for t in (7.0, 8.5, 10.0):
            assert s.zmin(t + 5.0) == pytest.approx(s.zmin(t) + 2.0)

    def test_matches_brute_force(self):
        q, p = 2.0, 5.0
        s = PeriodicServer(q, p)
        for t in (1.0, 3.0, 6.0, 7.5, 11.0, 14.0):
            assert s.zmin(t) <= brute_force_zmin(q, p, t) + 1e-6


class TestZmaxClosedForm:
    def test_double_hit(self):
        s = PeriodicServer(2.0, 5.0)
        assert s.zmax(4.0) == pytest.approx(4.0)  # 2Q back-to-back
        assert s.zmax(2.0) == pytest.approx(2.0)

    def test_plateau_after_double_hit(self):
        s = PeriodicServer(2.0, 5.0)
        assert s.zmax(5.0) == pytest.approx(4.0)
        assert s.zmax(7.0) == pytest.approx(4.0)  # until P+Q = 7
        assert s.zmax(8.0) == pytest.approx(5.0)

    def test_zero_and_negative(self):
        s = PeriodicServer(2.0, 5.0)
        assert s.zmax(0.0) == 0.0
        assert s.zmax(-3.0) == 0.0


class TestLinearBounds:
    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_envelopes_hold_everywhere(self, frac, period):
        s = PeriodicServer(frac * period, period)
        ts = np.linspace(0.0, 10 * period, 400)
        for t in ts:
            t = float(t)
            assert s.zmin(t) >= s.linear_lower(t) - 1e-9
            assert s.zmax(t) <= s.linear_upper(t) + 1e-9

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_are_tight(self, frac, period):
        """Delta and beta are suprema: the envelopes touch the curves."""
        s = PeriodicServer(frac * period, period)
        # zmin touches the lower line at t = delay + k*P.
        t_touch = s.delay + s.period
        assert s.zmin(t_touch) == pytest.approx(s.linear_lower(t_touch), abs=1e-9)
        # zmax touches the upper line at t = 2Q.
        t2 = 2 * s.budget
        assert s.zmax(t2) == pytest.approx(s.linear_upper(t2), abs=1e-9)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.5, max_value=50.0),
        st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_supply_sandwich(self, frac, period, t):
        s = PeriodicServer(frac * period, period)
        assert s.zmin(t) <= s.zmax(t) + 1e-12
