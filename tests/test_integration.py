"""End-to-end integration tests crossing every package boundary.

Each test exercises a full user workflow: spec -> validate -> transform ->
analyze -> (serialize ->) simulate -> compare, the way a downstream user
would chain the library.
"""

import json

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.cli import main
from repro.gen import RandomAssemblySpec, random_assembly
from repro.io import load_system, save_system
from repro.opt import minimize_bandwidth
from repro.paper import sensor_fusion_components, sensor_fusion_system
from repro.sim import SimulationConfig, simulate, validate_against_analysis


class TestPaperPipeline:
    """Component spec -> transactions -> analysis -> sim, on the example."""

    def test_full_chain(self, tmp_path):
        # 1. spec and validation
        assembly = sensor_fusion_components()
        assert not [p for p in assembly.validate() if p.fatal]

        # 2. transform
        system = assembly.derive_transactions()
        assert system.total_tasks() == 7

        # 3. analysis
        result = analyze(system, trace=True)
        assert result.schedulable

        # 4. serialize / reload
        path = save_system(system, tmp_path / "sys.json")
        reloaded = load_system(path)
        again = analyze(reloaded)
        assert again.transaction_wcrt == pytest.approx(result.transaction_wcrt)

        # 5. simulate the reloaded system; observed <= bound (sound config).
        report = validate_against_analysis(
            reloaded, seeds=(0,), placements=("late",),
            release_modes=("synchronous",), horizon=2000.0,
        )
        assert report.sound

    def test_cli_mirrors_api(self, tmp_path, capsys):
        path = save_system(sensor_fusion_system(), tmp_path / "sys.json")
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "31" in out  # Gamma_1 wcrt visible in the table


class TestDesignLoop:
    """Optimize, re-host, re-analyze, re-simulate."""

    def test_designed_system_survives_simulation(self):
        system = sensor_fusion_system()
        design = minimize_bandwidth(system, rate_tol=5e-3)
        assert design.feasible
        designed = design.designed_system(system)

        result = analyze(designed)
        assert result.schedulable

        report = validate_against_analysis(
            designed, seeds=(0,), placements=("late", "random"),
            release_modes=("synchronous",), horizon=2500.0,
        )
        assert report.sound


class TestGeneratedAssemblies:
    """Random component topologies through the whole stack."""

    @pytest.mark.parametrize("seed", [0, 2, 4])
    def test_generated_assembly_end_to_end(self, seed):
        spec = RandomAssemblySpec(n_layers=2, clients_per_layer=2)
        assembly = random_assembly(spec, seed=seed)
        system = assembly.derive_transactions()
        result = analyze(system, config=AnalysisConfig(best_case="sound"))
        trace = simulate(
            system,
            config=SimulationConfig(
                horizon=20.0 * max(tr.period for tr in system.transactions),
                placement="late",
                seed=seed,
            ),
        )
        for key, st in trace.tasks.items():
            bound = result.tasks[key].wcrt
            if bound != float("inf"):
                assert st.max_response <= bound + 1e-6


class TestExactReducedEndToEnd:
    def test_methods_agree_on_verdict_for_example(self):
        system = sensor_fusion_system()
        reduced = analyze(system)
        exact = analyze(system, config=AnalysisConfig(method="exact"))
        assert reduced.schedulable == exact.schedulable
        for key in reduced.tasks:
            assert exact.tasks[key].wcrt <= reduced.tasks[key].wcrt + 1e-9


class TestJsonSchemaStability:
    def test_documented_schema_fields(self, tmp_path):
        """The on-disk schema is a public contract; pin its shape."""
        path = save_system(sensor_fusion_system(), tmp_path / "sys.json")
        data = json.loads(path.read_text())
        assert set(data) == {"version", "name", "platforms", "transactions"}
        assert {p["kind"] for p in data["platforms"]} == {"linear"}
        task0 = data["transactions"][0]["tasks"][0]
        assert {"wcet", "bcet", "platform", "priority", "offset",
                "jitter", "blocking", "name"} <= set(task0)
