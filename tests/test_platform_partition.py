"""Unit tests for static TDM partitions."""

import pytest

from repro.platforms.partition import StaticPartitionPlatform


class TestConstruction:
    def test_rate(self):
        p = StaticPartitionPlatform([(0.0, 2.0), (5.0, 1.0)], cycle=10.0)
        assert p.rate == pytest.approx(0.3)

    def test_rejects_overlapping_slots(self):
        with pytest.raises(ValueError, match="overlap"):
            StaticPartitionPlatform([(0.0, 3.0), (2.0, 2.0)], cycle=10.0)

    def test_touching_slots_allowed(self):
        p = StaticPartitionPlatform([(0.0, 2.0), (2.0, 2.0)], cycle=10.0)
        assert p.rate == pytest.approx(0.4)

    def test_rejects_slot_outside_cycle(self):
        with pytest.raises(ValueError):
            StaticPartitionPlatform([(8.0, 3.0)], cycle=10.0)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            StaticPartitionPlatform([], cycle=10.0)

    def test_rejects_zero_length_slot(self):
        with pytest.raises(ValueError):
            StaticPartitionPlatform([(0.0, 0.0)], cycle=10.0)


class TestCumulativeSupply:
    def test_within_first_cycle(self):
        p = StaticPartitionPlatform([(1.0, 2.0)], cycle=5.0)
        assert p.cumulative_supply(0.5) == 0.0
        assert p.cumulative_supply(2.0) == 1.0
        assert p.cumulative_supply(4.0) == 2.0

    def test_across_cycles(self):
        p = StaticPartitionPlatform([(1.0, 2.0)], cycle=5.0)
        assert p.cumulative_supply(7.0) == 3.0  # 2 + 1


class TestSupplyFunctions:
    def test_single_slot_blackout_is_gap(self):
        """Fixed slots cannot float: the worst blackout is P - Q, not 2(P-Q)."""
        p = StaticPartitionPlatform([(0.0, 2.0)], cycle=5.0)
        assert p.zmin(3.0) == 0.0  # window [2, 5) misses the slot entirely
        assert p.zmin(4.0) == pytest.approx(1.0)
        assert p.zmin(5.0) == pytest.approx(2.0)

    def test_zmax_window_anchored_at_slot_start(self):
        p = StaticPartitionPlatform([(3.0, 2.0)], cycle=5.0)
        # Slots sit at [3,5), [8,10), ...: a window of length 4 catches at
        # most one full slot; length 7 (e.g. [3,10)) catches two.
        assert p.zmax(4.0) == pytest.approx(2.0)
        assert p.zmax(7.0) == pytest.approx(4.0)

    def test_zmin_leq_zmax(self):
        p = StaticPartitionPlatform([(0.0, 1.0), (4.0, 2.0)], cycle=10.0)
        for t in (0.5, 1.0, 3.0, 7.0, 12.0, 25.0):
            assert p.zmin(t) <= p.zmax(t) + 1e-12

    def test_supply_periodicity(self):
        p = StaticPartitionPlatform([(0.0, 1.0), (4.0, 2.0)], cycle=10.0)
        for t in (1.0, 3.5, 7.0):
            assert p.zmin(t + 10.0) == pytest.approx(p.zmin(t) + 3.0)
            assert p.zmax(t + 10.0) == pytest.approx(p.zmax(t) + 3.0)

    def test_negative_time(self):
        p = StaticPartitionPlatform([(0.0, 1.0)], cycle=4.0)
        assert p.zmin(-1.0) == 0.0
        assert p.zmax(0.0) == 0.0


class TestLinearBounds:
    def test_envelopes_hold(self):
        p = StaticPartitionPlatform([(1.0, 1.5), (6.0, 1.0)], cycle=8.0)
        np = pytest.importorskip("numpy")

        for t in np.linspace(0.01, 40.0, 300):
            t = float(t)
            assert p.zmin(t) >= p.linear_lower(t) - 1e-9
            assert p.zmax(t) <= p.linear_upper(t) + 1e-9

    def test_delay_of_single_slot_table(self):
        # Fixed slot: the worst window waits out the P-Q gap, then the
        # linear bound alpha*(t - delta) touches zmin at slot boundaries.
        p = StaticPartitionPlatform([(0.0, 2.0)], cycle=5.0)
        assert p.delay == pytest.approx(3.0)  # P - Q

    def test_burstiness_of_single_slot_table(self):
        p = StaticPartitionPlatform([(0.0, 2.0)], cycle=5.0)
        # Best window covers one slot of length Q=2 immediately:
        # sup(zmax - alpha t) at t = Q: 2 - 0.4*2 = 1.2.
        assert p.burstiness == pytest.approx(1.2)

    def test_fixed_slot_beats_floating_server(self):
        """A fixed slot is *better* (smaller delay) than a floating budget."""
        from repro.platforms.periodic_server import PeriodicServer

        part = StaticPartitionPlatform([(0.0, 2.0)], cycle=5.0)
        server = PeriodicServer(2.0, 5.0)
        assert part.rate == pytest.approx(server.rate)
        assert part.delay < server.delay

    def test_denser_table_has_smaller_delay(self):
        sparse = StaticPartitionPlatform([(0.0, 2.0)], cycle=10.0)
        dense = StaticPartitionPlatform([(0.0, 1.0), (5.0, 1.0)], cycle=10.0)
        assert dense.rate == pytest.approx(sparse.rate)
        assert dense.delay < sparse.delay
