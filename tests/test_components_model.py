"""Unit tests for interfaces, threads, schedulers and the Component class."""

import pytest

from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.scheduler import EDFScheduler, FixedPriorityScheduler
from repro.components.threads import (
    CallStep,
    EventThread,
    PeriodicThread,
    TaskStep,
)


class TestInterface:
    def test_provided_method(self):
        m = ProvidedMethod("read", mit=50.0)
        assert m.name == "read"
        assert m.mit == 50.0

    def test_rejects_nonpositive_mit(self):
        with pytest.raises(ValueError):
            ProvidedMethod("read", mit=0.0)
        with pytest.raises(ValueError):
            RequiredMethod("write", mit=-1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ProvidedMethod("", mit=1.0)


class TestSteps:
    def test_task_step_bcet_bounds(self):
        with pytest.raises(ValueError):
            TaskStep("t", wcet=1.0, bcet=2.0)

    def test_task_step_priority_override(self):
        assert TaskStep("t", wcet=1.0, priority=5).priority == 5

    def test_call_step_rejects_empty(self):
        with pytest.raises(ValueError):
            CallStep("")


class TestThreads:
    def test_periodic_defaults_deadline(self):
        t = PeriodicThread(
            name="T", priority=1, period=10.0, body=[TaskStep("a", wcet=1.0)]
        )
        assert t.deadline == 10.0

    def test_periodic_rejects_empty_body(self):
        with pytest.raises(ValueError, match="empty body"):
            PeriodicThread(name="T", priority=1, period=10.0, body=[])

    def test_event_requires_realizes(self):
        with pytest.raises(ValueError, match="realize"):
            EventThread(name="T", priority=1, body=[TaskStep("a", wcet=1.0)])

    def test_body_type_checked(self):
        with pytest.raises(TypeError):
            PeriodicThread(name="T", priority=1, period=5.0, body=["nope"])

    def test_step_filters(self):
        t = PeriodicThread(
            name="T",
            priority=1,
            period=10.0,
            body=[TaskStep("a", wcet=1.0), CallStep("m"), TaskStep("b", wcet=1.0)],
        )
        assert [s.name for s in t.task_steps()] == ["a", "b"]
        assert [s.method for s in t.call_steps()] == ["m"]


class TestSchedulers:
    def test_fixed_priority_is_analyzable(self):
        assert FixedPriorityScheduler().analyzable

    def test_edf_is_not_analyzable(self):
        assert not EDFScheduler().analyzable


def sensor_component():
    return Component(
        name="SensorReading",
        provided=[ProvidedMethod("read", mit=50.0)],
        threads=[
            PeriodicThread(
                name="poll", priority=2, period=15.0, body=[TaskStep("p", wcet=1.0)]
            ),
            EventThread(
                name="serve",
                realizes="read",
                priority=1,
                body=[TaskStep("s", wcet=1.0)],
            ),
        ],
    )


class TestComponent:
    def test_valid_component(self):
        c = sensor_component()
        assert c.provided_method("read").mit == 50.0
        assert c.realizer_of("read").name == "serve"
        assert len(c.periodic_threads()) == 1
        assert len(c.event_threads()) == 1

    def test_unknown_provided_method(self):
        with pytest.raises(KeyError):
            sensor_component().provided_method("nope")

    def test_unknown_realizer(self):
        c = Component(
            name="C",
            provided=[ProvidedMethod("read", mit=10.0)],
            threads=[],
        )
        with pytest.raises(KeyError, match="no thread realizes"):
            c.realizer_of("read")

    def test_rejects_event_thread_for_unknown_method(self):
        with pytest.raises(ValueError, match="unknown provided method"):
            Component(
                name="C",
                threads=[
                    EventThread(
                        name="e",
                        realizes="ghost",
                        priority=1,
                        body=[TaskStep("a", wcet=1.0)],
                    )
                ],
            )

    def test_rejects_duplicate_realizers(self):
        with pytest.raises(ValueError, match="more than one thread"):
            Component(
                name="C",
                provided=[ProvidedMethod("read", mit=10.0)],
                threads=[
                    EventThread(
                        name="e1", realizes="read", priority=1,
                        body=[TaskStep("a", wcet=1.0)],
                    ),
                    EventThread(
                        name="e2", realizes="read", priority=2,
                        body=[TaskStep("b", wcet=1.0)],
                    ),
                ],
            )

    def test_rejects_call_to_undeclared_method(self):
        with pytest.raises(ValueError, match="not in the required interface"):
            Component(
                name="C",
                threads=[
                    PeriodicThread(
                        name="t", priority=1, period=5.0, body=[CallStep("ghost")]
                    )
                ],
            )

    def test_rejects_method_both_provided_and_required(self):
        with pytest.raises(ValueError, match="both provided and required"):
            Component(
                name="C",
                provided=[ProvidedMethod("m", mit=1.0)],
                required=[RequiredMethod("m", mit=1.0)],
            )

    def test_rejects_duplicate_thread_names(self):
        with pytest.raises(ValueError, match="duplicate thread names"):
            Component(
                name="C",
                threads=[
                    PeriodicThread(
                        name="t", priority=1, period=5.0,
                        body=[TaskStep("a", wcet=1.0)],
                    ),
                    PeriodicThread(
                        name="t", priority=2, period=7.0,
                        body=[TaskStep("b", wcet=1.0)],
                    ),
                ],
            )
