"""Property-based tests on the analysis invariants.

The big four:

1. the reduced analysis upper-bounds the exact analysis;
2. response times are monotone in execution time, platform delay and
   (inversely) platform rate;
3. worst case dominates best case;
4. the classical special case (1,0,0) never reports larger response times
   than any degraded platform.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import AnalysisConfig, analyze
from repro.analysis.reduced import response_time_reduced
from repro.analysis.static_offsets import response_time_exact
from repro.gen import RandomSystemSpec, random_system
from repro.model.system import TransactionSystem
from repro.model.transaction import Transaction
from repro.platforms.linear import LinearSupplyPlatform

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def small_system(seed, utilization=0.35):
    spec = RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=utilization,
        delay_range=(0.0, 2.0),
    )
    return random_system(spec, seed=seed)


def rescale(system: TransactionSystem, factor: float) -> TransactionSystem:
    return TransactionSystem(
        transactions=[
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                tasks=[
                    t.with_updates(wcet=t.wcet * factor, bcet=t.bcet * factor)
                    for t in tr.tasks
                ],
            )
            for tr in system.transactions
        ],
        platforms=list(system.platforms),
    )


def with_platform_delay(system: TransactionSystem, extra: float) -> TransactionSystem:
    platforms = [
        LinearSupplyPlatform(
            p.rate, p.delay + extra, p.burstiness, allow_superunit=True
        )
        for p in system.platforms
    ]
    return TransactionSystem(transactions=system.transactions, platforms=platforms)


class TestReducedDominatesExact:
    @given(st.integers(min_value=0, max_value=40))
    @SETTINGS
    def test_reduced_upper_bounds_exact(self, seed):
        system = small_system(seed)
        # Static-offset comparison (fixed jitters) - inject some jitter to
        # make scenarios non-trivial.
        for tr in system.transactions:
            for k, t in enumerate(tr.tasks):
                t.jitter = (seed % 5) * 0.7 * k
                t.offset = 0.5 * k
        for i, tr in enumerate(system.transactions):
            for j in range(len(tr.tasks)):
                exact = response_time_exact(system, i, j).wcrt
                reduced = response_time_reduced(system, i, j).wcrt
                assert reduced >= exact - 1e-9, (
                    f"reduced {reduced} < exact {exact} for task ({i},{j})"
                )


class TestMonotonicity:
    @given(st.integers(min_value=0, max_value=30))
    @SETTINGS
    def test_wcet_monotone(self, seed):
        base = small_system(seed)
        bigger = rescale(base, 1.3)
        ra = analyze(base)
        rb = analyze(bigger)
        for key in ra.tasks:
            if math.isinf(ra.tasks[key].wcrt):
                continue
            assert rb.tasks[key].wcrt >= ra.tasks[key].wcrt - 1e-9

    @given(st.integers(min_value=0, max_value=30))
    @SETTINGS
    def test_delay_monotone(self, seed):
        base = small_system(seed)
        slower = with_platform_delay(base, 1.5)
        ra = analyze(base)
        rb = analyze(slower)
        for key in ra.tasks:
            if math.isinf(ra.tasks[key].wcrt):
                continue
            assert rb.tasks[key].wcrt >= ra.tasks[key].wcrt - 1e-9

    @given(st.integers(min_value=0, max_value=30))
    @SETTINGS
    def test_rate_monotone(self, seed):
        base = small_system(seed)
        faster_platforms = [
            LinearSupplyPlatform(
                min(1.0, p.rate * 1.5), p.delay, p.burstiness
            )
            for p in base.platforms
        ]
        faster = TransactionSystem(
            transactions=base.transactions, platforms=faster_platforms
        )
        ra = analyze(base)
        rb = analyze(faster)
        for key in ra.tasks:
            if math.isinf(ra.tasks[key].wcrt):
                continue
            assert rb.tasks[key].wcrt <= ra.tasks[key].wcrt + 1e-9


class TestWorstDominatesBest:
    @given(st.integers(min_value=0, max_value=40))
    @SETTINGS
    def test_bcrt_leq_wcrt(self, seed):
        result = analyze(small_system(seed))
        for key, ta in result.tasks.items():
            assert ta.bcrt <= ta.wcrt + 1e-9


class TestTraceShape:
    @given(st.integers(min_value=0, max_value=20))
    @SETTINGS
    def test_jitters_nondecreasing_over_iterations(self, seed):
        result = analyze(small_system(seed), trace=True)
        for key in result.tasks:
            prev = -1.0
            for row in result.iterations:
                assert row.jitters[key] >= prev - 1e-9
                prev = row.jitters[key]

    @given(st.integers(min_value=0, max_value=20))
    @SETTINGS
    def test_responses_nondecreasing_over_iterations(self, seed):
        result = analyze(small_system(seed), trace=True)
        for key in result.tasks:
            prev = -1.0
            for row in result.iterations:
                r = row.responses[key]
                if math.isinf(r):
                    continue
                assert r >= prev - 1e-9
                prev = r


class TestVerdictConsistency:
    @given(st.integers(min_value=0, max_value=40))
    @SETTINGS
    def test_verdict_matches_responses(self, seed):
        result = analyze(small_system(seed, utilization=0.6))
        expect = all(
            r <= d + 1e-9
            for r, d in zip(result.transaction_wcrt, result.transaction_deadline)
        )
        assert result.schedulable == expect

    @given(st.integers(min_value=0, max_value=20))
    @SETTINGS
    def test_exact_method_consistent_with_reduced_verdict(self, seed):
        system = small_system(seed)
        red = analyze(system)
        exa = analyze(system, config=AnalysisConfig(method="exact"))
        # exact <= reduced responses => exact schedulable whenever reduced is.
        if red.schedulable:
            assert exa.schedulable
        for key in red.tasks:
            if math.isinf(red.tasks[key].wcrt):
                continue
            assert exa.tasks[key].wcrt <= red.tasks[key].wcrt + 1e-9
