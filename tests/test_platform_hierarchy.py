"""Unit tests for multi-level (nested) platforms."""

import numpy as np
import pytest

from repro.analysis import analyze
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.algebra import verify_linear_bounds, verify_supply_sanity
from repro.platforms.hierarchy import NestedPlatform, nest
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.periodic_server import PeriodicServer


class TestClosedTriple:
    def test_rates_multiply(self):
        n = NestedPlatform(LinearSupplyPlatform(0.5), LinearSupplyPlatform(0.4))
        assert n.rate == pytest.approx(0.2)

    def test_delay_stretched_by_outer_rate(self):
        outer = LinearSupplyPlatform(0.5, delay=2.0)
        inner = LinearSupplyPlatform(0.4, delay=1.0)
        n = NestedPlatform(outer, inner)
        # Delta = 2 + 1/0.5 = 4.
        assert n.delay == pytest.approx(4.0)

    def test_burstiness_composition(self):
        outer = LinearSupplyPlatform(0.5, burstiness=2.0)
        inner = LinearSupplyPlatform(0.4, burstiness=1.0)
        n = NestedPlatform(outer, inner)
        # beta = 1 + 0.4*2 = 1.8.
        assert n.burstiness == pytest.approx(1.8)

    def test_identity_outer_is_transparent(self):
        inner = PeriodicServer(2.0, 5.0)
        n = NestedPlatform(DedicatedPlatform(), inner)
        assert n.triple() == pytest.approx(inner.triple())
        for t in (0.0, 3.0, 6.5, 12.0):
            assert n.zmin(t) == inner.zmin(t)
            assert n.zmax(t) == inner.zmax(t)


class TestExactComposition:
    def test_composed_supply_monotone_and_sandwiched(self):
        n = NestedPlatform(PeriodicServer(3.0, 5.0), PeriodicServer(1.0, 2.0))
        assert verify_supply_sanity(n, horizon=100.0)

    def test_closed_triple_envelopes_exact_curves(self):
        """The closed-form triple is a valid bound of the composition."""
        combos = [
            (PeriodicServer(3.0, 5.0), PeriodicServer(1.0, 2.0)),
            (LinearSupplyPlatform(0.6, 1.0, 0.5), PeriodicServer(1.0, 3.0)),
            (PeriodicServer(4.0, 6.0), LinearSupplyPlatform(0.5, 0.5, 0.2)),
        ]
        for outer, inner in combos:
            n = NestedPlatform(outer, inner)
            assert verify_linear_bounds(n, horizon=200.0), (outer, inner)

    def test_composition_never_exceeds_either_layer(self):
        outer = PeriodicServer(3.0, 5.0)
        inner = PeriodicServer(1.0, 2.0)
        n = NestedPlatform(outer, inner)
        for t in np.linspace(0.1, 50.0, 100):
            t = float(t)
            assert n.zmin(t) <= outer.zmin(t) + 1e-9
            # Inner consumes outer time: cycles <= inner's own best curve.
            assert n.zmax(t) <= inner.zmax(t) + 1e-9


class TestNestHelper:
    def test_single_platform_unchanged(self):
        p = DedicatedPlatform()
        assert nest(p) is p

    def test_three_levels(self):
        n = nest(
            LinearSupplyPlatform(0.8),
            LinearSupplyPlatform(0.5),
            LinearSupplyPlatform(0.5),
            name="deep",
        )
        assert isinstance(n, NestedPlatform)
        assert n.rate == pytest.approx(0.2)
        assert n.depth() == 3
        assert n.name == "deep"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nest()

    def test_rejects_non_platform(self):
        with pytest.raises(TypeError):
            NestedPlatform(object(), DedicatedPlatform())


class TestAnalysisOnNestedPlatforms:
    def test_analyzes_like_equivalent_flat_triple(self):
        """The analysis only reads the triple, so a nested platform and its
        flattened triple give identical response times."""
        nested = NestedPlatform(
            LinearSupplyPlatform(0.5, 1.0, 0.0), LinearSupplyPlatform(0.8, 0.5, 0.0)
        )
        flat = LinearSupplyPlatform(
            nested.rate, nested.delay, nested.burstiness, allow_superunit=True
        )
        txn = Transaction(
            period=50.0, tasks=[Task(wcet=2.0, platform=0, priority=1)]
        )
        ra = analyze(TransactionSystem(transactions=[txn], platforms=[nested]))
        rb = analyze(TransactionSystem(transactions=[txn], platforms=[flat]))
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)

    def test_deeper_nesting_is_worse(self):
        base = LinearSupplyPlatform(0.9, 0.5, 0.0)
        two = nest(base, LinearSupplyPlatform(0.9, 0.5, 0.0))
        three = nest(base, LinearSupplyPlatform(0.9, 0.5, 0.0),
                     LinearSupplyPlatform(0.9, 0.5, 0.0))
        txn = lambda: Transaction(  # noqa: E731
            period=100.0, tasks=[Task(wcet=2.0, platform=0, priority=1)]
        )
        r1 = analyze(TransactionSystem(transactions=[txn()], platforms=[base]))
        r2 = analyze(TransactionSystem(transactions=[txn()], platforms=[two]))
        r3 = analyze(TransactionSystem(transactions=[txn()], platforms=[three]))
        assert (
            r1.transaction_wcrt[0]
            < r2.transaction_wcrt[0]
            < r3.transaction_wcrt[0]
        )
