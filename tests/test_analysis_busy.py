"""Unit tests for the interference machinery (phases and W functions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.busy import (
    HPTask,
    TransactionView,
    build_views,
    phase,
    starter_phase_of_analyzed,
    w_task,
    w_transaction_k,
    w_transaction_star,
)
from repro.paper import sensor_fusion_system


class TestPhase:
    def test_self_start_gives_full_period(self):
        # Starter == the task itself, no jitter: Eq. 10 gives T.
        assert phase(0.0, 0.0, 0.0, 50.0) == 50.0

    def test_table3_tau14_phase(self):
        # tau_1_4 starting its own busy period with J=19, phi=5:
        # T - (5 + 19 - 5) mod 50 = 31.
        assert phase(5.0, 19.0, 5.0, 50.0) == 31.0

    def test_cross_task_phase(self):
        # Busy period started by tau_1_4 (phi=5, J=0); phase of tau_1_1
        # (phi=0): 50 - 5 = 45.
        assert phase(5.0, 0.0, 0.0, 50.0) == 45.0


class TestWTask:
    def test_no_jitter_one_job_per_period(self):
        # phi = T: floor((0+T)/T) = 1 pending job; no arrivals before t<=T.
        assert w_task(50.0, 0.0, 5.0, 50.0, 10.0) == 5.0

    def test_arrivals_accumulate(self):
        # phi = 5: at t=10 one arrival has happened plus ceil((10-5)/50)=1.
        assert w_task(5.0, 0.0, 2.5, 15.0, 10.0) == 2.5
        assert w_task(5.0, 0.0, 2.5, 15.0, 21.0) == 5.0

    def test_jitter_adds_pending_jobs(self):
        # floor((J+phi)/T) with J=19, phi=31, T=50 -> 1 pending job.
        assert w_task(31.0, 19.0, 5.0, 50.0, 1.0) == 5.0

    def test_zero_time_nonnegative(self):
        assert w_task(50.0, 0.0, 5.0, 50.0, 0.0) == 0.0

    def test_monotone_in_t(self):
        prev = -1.0
        for t in [0.0, 1.0, 5.0, 14.9, 15.1, 30.0, 45.0]:
            cur = w_task(5.0, 3.0, 2.0, 15.0, t)
            assert cur >= prev
            prev = cur


class TestTransactionViews:
    def test_build_views_platform_restriction(self, paper_system=None):
        system = sensor_fusion_system()
        analyzed, own, others = build_views(system, 0, 3)  # tau_1_4 on Pi3
        # Same platform (Pi3) and priority >= 3: nothing qualifies.
        assert own.tasks == ()
        assert others == []

    def test_build_views_tau41(self):
        system = sensor_fusion_system()
        analyzed, own, others = build_views(system, 3, 0)  # tau_4_1 on Pi3
        assert own.tasks == ()
        assert len(others) == 1  # only Gamma_1 has tasks on Pi3
        hp_idx = sorted(t.index for t in others[0].tasks)
        assert hp_idx == [0, 3]  # tau_1_1 and tau_1_4

    def test_costs_are_rate_scaled(self):
        system = sensor_fusion_system()
        analyzed, own, others = build_views(system, 3, 0)
        for hp in others[0].tasks:
            assert hp.cost == pytest.approx(1.0 / 0.2)  # C=1, alpha=0.2
        assert analyzed.cost == pytest.approx(7.0 / 0.2)
        assert analyzed.delay == 2.0

    def test_analyzed_task_excluded_from_own_view(self):
        system = sensor_fusion_system()
        analyzed, own, others = build_views(system, 0, 0)  # tau_1_1, prio 2
        # tau_1_4 (prio 3, same platform) interferes; tau_1_1 itself must not.
        assert [t.index for t in own.tasks] == [3]


class TestWTransaction:
    def test_w_star_dominates_every_starter(self):
        view = TransactionView(
            period=20.0,
            index=0,
            tasks=(
                HPTask(phi=0.0, jitter=2.0, cost=1.0, index=0),
                HPTask(phi=5.0, jitter=0.0, cost=2.0, index=1),
            ),
        )
        for t in [0.5, 3.0, 7.0, 12.0, 19.0, 25.0]:
            star = w_transaction_star(view, t)
            for starter in view.tasks:
                assert star >= w_transaction_k(view, starter, t) - 1e-12

    def test_explicit_starter_params_required(self):
        view = TransactionView(period=10.0, index=0, tasks=())
        with pytest.raises(ValueError):
            w_transaction_k(view, None, 1.0)

    def test_starter_phase_of_analyzed_self(self):
        system = sensor_fusion_system()
        analyzed, own, _ = build_views(system, 0, 3)
        assert starter_phase_of_analyzed(analyzed, None) == 50.0


class TestCompiledWEquivalence:
    """The production hot path (reduced/static_offsets) runs the compiled
    closures; they must agree with the interpreted W functions exactly."""

    @given(
        period=st.floats(min_value=1.0, max_value=200.0),
        n_tasks=st.integers(min_value=0, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_compiled_equals_interpreted(self, period, n_tasks, data):
        from repro.analysis.busy import (
            compile_w_transaction_k,
            compile_w_transaction_star,
        )

        tasks = tuple(
            HPTask(
                phi=data.draw(st.floats(min_value=0.0, max_value=period * 0.999)),
                jitter=data.draw(st.floats(min_value=0.0, max_value=3 * period)),
                cost=data.draw(st.floats(min_value=0.01, max_value=20.0)),
                index=j,
            )
            for j in range(n_tasks)
        )
        view = TransactionView(period=period, index=0, tasks=tasks)
        ts = [data.draw(st.floats(min_value=0.0, max_value=5 * period))
              for _ in range(4)]
        s_phi = data.draw(st.floats(min_value=0.0, max_value=period * 0.999))
        s_jit = data.draw(st.floats(min_value=0.0, max_value=2 * period))

        w_k = compile_w_transaction_k(
            view, None, starter_phi=s_phi, starter_jitter=s_jit
        )
        for t in ts:
            assert w_k(t) == pytest.approx(
                w_transaction_k(
                    view, None, t, starter_phi=s_phi, starter_jitter=s_jit
                ),
                abs=1e-9,
            )
        if tasks:
            star = compile_w_transaction_star(view)
            for t in ts:
                assert star(t) == pytest.approx(
                    w_transaction_star(view, t), abs=1e-9
                )
