"""Unit tests for the epsilon-guarded arithmetic in repro.util.math."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.math import (
    EPS,
    ceil_div,
    fceil,
    ffloor,
    floor_div,
    fmod_pos,
    is_close,
    is_integer_multiple,
    phase_in_period,
    safe_div,
)


class TestFceilFfloor:
    def test_exact_integer(self):
        assert fceil(3.0) == 3
        assert ffloor(3.0) == 3

    def test_plain_values(self):
        assert fceil(3.2) == 4
        assert ffloor(3.8) == 3

    def test_negative_values(self):
        assert fceil(-1.5) == -1
        assert ffloor(-1.5) == -2

    def test_noise_below_integer_snaps_up(self):
        assert fceil(3.0 - 1e-12) == 3

    def test_noise_above_integer_snaps_down(self):
        assert ffloor(3.0 + 1e-12) == 3

    def test_noise_beyond_eps_not_snapped(self):
        assert fceil(3.0 + 1e-6) == 4
        assert ffloor(3.0 - 1e-6) == 2

    @given(st.integers(min_value=-10**6, max_value=10**6))
    def test_integers_fixed(self, n):
        assert fceil(float(n)) == n
        assert ffloor(float(n)) == n

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_bracketing(self, x):
        assert ffloor(x) <= x + EPS
        assert fceil(x) >= x - EPS
        assert fceil(x) - ffloor(x) in (0, 1)


class TestDivisions:
    def test_ceil_div_exact_multiple(self):
        # The bug class this module exists to prevent.
        assert ceil_div(0.1 + 0.1 + 0.1, 0.1) == 3

    def test_floor_div_exact_multiple(self):
        assert floor_div(0.1 + 0.1 + 0.1, 0.1) == 3

    def test_ceil_div_non_multiple(self):
        assert ceil_div(7.0, 2.0) == 4

    def test_negative_numerator(self):
        assert ceil_div(-0.5, 50.0) == 0
        assert floor_div(-0.5, 50.0) == -1

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_denominator(self, bad):
        with pytest.raises(ValueError):
            ceil_div(1.0, bad)
        with pytest.raises(ValueError):
            floor_div(1.0, bad)


class TestFmodPos:
    def test_basic(self):
        assert fmod_pos(7.0, 5.0) == 2.0

    def test_negative_argument(self):
        assert fmod_pos(-3.0, 5.0) == 2.0

    def test_exact_multiple_is_zero(self):
        assert fmod_pos(10.0, 5.0) == 0.0
        assert fmod_pos(-10.0, 5.0) == 0.0

    def test_float_noise_multiple_is_zero(self):
        assert fmod_pos(0.30000000000000004, 0.1) == 0.0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            fmod_pos(1.0, 0.0)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    def test_range(self, x, period):
        r = fmod_pos(x, period)
        assert 0.0 <= r < period


class TestPhaseInPeriod:
    def test_zero_maps_to_full_period(self):
        # Paper convention pinned by Table 3: exact multiples give T.
        assert phase_in_period(0.0, 50.0) == 50.0

    def test_multiple_maps_to_full_period(self):
        assert phase_in_period(100.0, 50.0) == 50.0

    def test_interior_value(self):
        # phi = T - (x mod T): 50 - 19 = 31 (the tau_1_4 case of Table 3).
        assert phase_in_period(19.0, 50.0) == 31.0

    def test_negative_argument(self):
        # 50 - ((-5) mod 50) = 50 - 45 = 5.
        assert phase_in_period(-5.0, 50.0) == 5.0

    @given(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        st.floats(min_value=1e-2, max_value=1e3, allow_nan=False),
    )
    def test_half_open_range(self, x, period):
        ph = phase_in_period(x, period)
        assert 0.0 < ph <= period


class TestMisc:
    def test_is_close(self):
        assert is_close(1.0, 1.0 + EPS / 2)
        assert not is_close(1.0, 1.0 + 1e-3)

    def test_is_integer_multiple(self):
        assert is_integer_multiple(15.0, 5.0)
        assert not is_integer_multiple(16.0, 5.0)
        with pytest.raises(ValueError):
            is_integer_multiple(1.0, 0.0)

    def test_safe_div(self):
        assert safe_div(6.0, 3.0) == 2.0
        with pytest.raises(ZeroDivisionError, match="the rate"):
            safe_div(1.0, 0.0, what="the rate")

    def test_fceil_huge_value(self):
        assert fceil(1e15 + 0.4) >= 10**15

    def test_nan_propagates_as_error(self):
        with pytest.raises((ValueError, OverflowError)):
            fceil(math.nan)
