"""Fault-injection drills for the dispatcher's liveness + recovery layer.

The ISSUE 7 acceptance bar: every :class:`FaultPlan` scenario -- kill at
each cell boundary, hang forever, heartbeat drop, corrupt output JSON,
exit nonzero -- must converge to a merged result bit-identical to the
unsharded single-process run (counter pins included), leave zero child
processes behind, and a hung shard must be detected and relaunched
within one ``stall_after`` window.  Straggler splitting and graceful
SIGINT shutdown ride the same harness.

The subprocess scenarios are ``dist``-marked (multi-process, seconds
each) and additionally ``faults``-marked so CI can run them as a
dedicated leg under a hard timeout; the policy/unit tests at the bottom
run everywhere.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    Campaign,
    CampaignDispatcher,
    CampaignResult,
    CampaignSpec,
    CopyBackTransport,
    DispatchError,
    Fault,
    FaultPlan,
    HostHealth,
    LocalBackend,
    SharedDirTransport,
    TransportFault,
)
from repro.batch.dispatch import DispatchReport, ShardRecord, _Running
from repro.batch.faults import FAULT_ENV, WorkerFaults


def tiny_spec(**overrides) -> CampaignSpec:
    """Two chains of three cells each: every boundary is enumerable."""
    kwargs = dict(
        grid={"utilization": (0.3, 0.6, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("gauss_seidel",),
        systems_per_cell=2,
        seed=11,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(scope="module")
def single_run() -> CampaignResult:
    return Campaign(tiny_spec()).run(workers=1)


class _RecordingBackend(LocalBackend):
    """Remember every child Popen so tests can assert none is left alive."""

    def __init__(self):
        self.procs: list[subprocess.Popen] = []

    def launch(self, argv, *, slot, log_path, env=None):
        proc = super().launch(argv, slot=slot, log_path=log_path, env=env)
        self.procs.append(proc)
        return proc

    def assert_all_reaped(self):
        lingering = [p.pid for p in self.procs if p.poll() is None]
        assert not lingering, f"leftover child processes: {lingering}"


def dispatch(spec, work_dir, faults=None, backend=None, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("checkpoint_every", 1)
    return CampaignDispatcher(
        spec, work_dir=work_dir, faults=faults, backend=backend, **kwargs
    ).run()


pytestmark = pytest.mark.faults


@pytest.mark.dist
class TestFaultMatrix:
    """Each injected failure recovers to the bit-identical union."""

    @pytest.mark.parametrize("at_cell", [0, 1, 2, 3])
    def test_kill_at_each_cell_boundary(self, tmp_path, single_run, at_cell):
        """SIGKILL after exactly N cells (every boundary of the 3-cell
        shard, including before-the-first and after-the-last)."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="kill", at_cell=at_cell)]),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempts == 2
        assert victim.attempt_outcomes == ["failed", "completed"]
        # Any checkpointed progress is recovered through --resume.
        assert victim.resumed_attempts == (1 if at_cell > 0 else 0)
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_hang_detected_as_stalled_within_one_window(
        self, tmp_path, single_run
    ):
        """A wedged-but-alive worker keeps beating with a frozen counter:
        the dispatcher must classify *stalled* (not dead, not slow) and
        relaunch within one stall window."""
        stall_after = 3.0
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="hang", at_cell=1)]),
            stall_after=stall_after, heartbeat_interval=0.2,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["stalled", "completed"]
        # Detection latency: the hung attempt's wall is its short healthy
        # prefix plus at most one stall window plus poll slack -- far
        # under two windows.
        assert victim.attempt_walls[0] < 2 * stall_after
        assert victim.resumed_attempts == 1  # cell 1 came from checkpoint
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_heartbeat_drop_detected_as_dead(self, tmp_path, single_run):
        """Silence (no beats at all) classifies as *dead*."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan(
                [Fault(shard=1, kind="drop_heartbeats", at_cell=1)]
            ),
            stall_after=3.0, heartbeat_interval=0.2,
        )
        victim = next(s for s in report.shards if s.shard == 1)
        assert victim.attempt_outcomes == ["dead", "completed"]
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_corrupt_output_is_a_miss_not_a_traceback(
        self, tmp_path, single_run
    ):
        """A shard that exits 0 leaving truncated JSON: the
        crash-consistent readers treat the file as absent and relaunch
        (resuming from the intact checkpoint, never the damaged file)."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="corrupt_output")]),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempts == 2
        assert victim.resumed_attempts == 1
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_flaky_exit_nonzero_then_succeeds(self, tmp_path, single_run):
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan(
                [Fault(shard=0, kind="exit", at_cell=2, exit_code=5)]
            ),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["failed", "completed"]
        assert report.relaunches == 1
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_shard_timeout_kills_hung_worker(self, tmp_path, single_run):
        """With liveness off, the flat wall budget is the backstop."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="hang", at_cell=1)]),
            shard_timeout=3.0,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["timeout", "completed"]
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_permanently_sick_shard_exhausts_attempts(self, tmp_path):
        """attempt=None makes the fault fire on every launch; the
        dispatcher must give up loudly after max_attempts."""
        backend = _RecordingBackend()
        with pytest.raises(DispatchError, match="failed 2 attempt"):
            dispatch(
                tiny_spec(), tmp_path, backend=backend,
                faults=FaultPlan(
                    [Fault(shard=0, kind="kill", at_cell=0, attempt=None)]
                ),
                max_attempts=2,
            )
        backend.assert_all_reaped()

    def test_backoff_delays_are_recorded(self, tmp_path, single_run):
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="exit", at_cell=1)]),
            backoff_base=0.2, backoff_max=1.0,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert len(victim.backoff_s) == 1
        assert 0.2 <= victim.backoff_s[0] <= 0.4  # base + jitter in [0, base)
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()


@pytest.mark.dist
class TestStragglerSplitting:
    def test_split_union_bit_identical(self, tmp_path):
        """One shard holding every chain, one idle slot: the straggler's
        unfinished chains are re-partitioned onto fresh sub-shards and
        the union still equals the single run bit for bit."""
        spec = tiny_spec(systems_per_cell=4)  # 4 chains to split across
        single = Campaign(spec).run(workers=1)
        backend = _RecordingBackend()
        report = dispatch(
            spec, tmp_path, backend=backend,
            shards=1, workers=2, split_after=0.2,
        )
        assert report.splits >= 1
        parent = next(s for s in report.shards if s.shard == 0)
        assert "split" in parent.attempt_outcomes
        subs = [s for s in report.shards if s.parent is not None]
        assert subs and all(s.parent == 0 for s in subs)
        # The sub-shards partition the parent's chains exactly.
        covered = sorted(i for s in subs for i in s.chain_indices)
        assert covered == parent.chain_indices
        # A split is elasticity, not a failure: no relaunch counted.
        assert report.relaunches == 0
        assert report.result.metrics() == single.metrics()
        backend.assert_all_reaped()

    def test_single_unfinished_chain_is_not_split(self, tmp_path):
        """A shard with one chain cannot shrink; it must never be shot
        by the splitter."""
        spec = tiny_spec(systems_per_cell=1)  # one chain total
        single = Campaign(spec).run(workers=1)
        backend = _RecordingBackend()
        report = dispatch(
            spec, tmp_path, backend=backend,
            shards=1, workers=2, split_after=0.0,
        )
        assert report.splits == 0
        assert report.relaunches == 0
        assert report.result.metrics() == single.metrics()
        backend.assert_all_reaped()


@pytest.mark.dist
class TestGracefulShutdown:
    def test_sigint_terminates_children_and_leaves_resumable_dir(
        self, tmp_path
    ):
        """SIGINT mid-dispatch: exit nonzero, merged partial saved, work
        dir resumable, zero orphaned subprocesses."""
        work_dir = tmp_path / "wd"
        env = dict(os.environ)
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable, "-m", "repro", "campaign-dispatch",
            "--grid", "utilization=0.2,0.4,0.5,0.6,0.7,0.8,0.9",
            "--transactions", "2", "--tasks", "1,2", "--platforms", "2",
            "--systems", "8", "--methods", "gauss_seidel", "--seed", "5",
            "--workers", "2", "--shards", "4", "--checkpoint-every", "1",
            "--work-dir", str(work_dir),
        ]
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if (work_dir / "spec.json").exists() and list(
                    work_dir.glob("*.hb.json")
                ):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.1)
            assert proc.poll() is None, proc.communicate()
            time.sleep(0.3)  # let some shard work happen
            proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 1
        assert "interrupted" in err
        assert "resumable" in err
        # The merged partial is a loadable result for the same spec.
        partial = CampaignResult.load_json(work_dir / "partial.json")
        spec_dict = json.loads((work_dir / "spec.json").read_text())
        assert partial.spec == spec_dict
        # Zero orphans: no process still references this dispatch's spec.
        spec_path = str(work_dir / "spec.json")
        lingering = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit():
                continue
            try:
                cmdline = (
                    Path(f"/proc/{pid}/cmdline")
                    .read_bytes()
                    .decode(errors="replace")
                    .replace("\0", " ")
                )
            except OSError:
                continue
            if spec_path in cmdline:
                lingering.append((pid, cmdline))
        assert not lingering, lingering


class _TwoHostBackend(_RecordingBackend):
    """Mock a two-machine fleet: slot ``i`` pinned to ``hosts[i % n]``.

    Children still run locally, but on a :class:`CopyBackTransport` they
    read and write inside *their host's* work dir -- so the dispatcher
    really does stage inputs out and pull outputs back across a
    directory boundary, exactly as it would across a network one.
    """

    def __init__(self, hosts=("alpha", "beta")):
        super().__init__()
        self.hosts = list(hosts)

    def host_of(self, slot: int) -> str:
        return self.hosts[slot % len(self.hosts)]


def copyback(tmp_path, hosts=("alpha", "beta"), **kwargs):
    """A dispatcher work dir plus a copy-back transport over mock hosts."""
    work_dir = tmp_path / "wd"
    kwargs.setdefault("backoff_base", 0.0)  # transfer retries sleep-free
    transport = CopyBackTransport(
        work_dir, {h: tmp_path / "hosts" / h for h in hosts}, **kwargs
    )
    return work_dir, transport


@pytest.mark.dist
@pytest.mark.transport
class TestCopyBackDispatch:
    """The ISSUE 9 acceptance bar: a dispatched campaign over a mocked
    2-host copy-back transport -- with transfer faults injected -- merges
    bit-identical to the single run, quarantines the dead host,
    reschedules its shards, and leaves zero children behind."""

    def test_clean_two_host_run_bit_identical(self, tmp_path, single_run):
        backend = _TwoHostBackend()
        work_dir, transport = copyback(tmp_path)
        report = dispatch(
            tiny_spec(), work_dir, backend=backend, transport=transport,
        )
        assert report.result.metrics() == single_run.metrics()
        assert report.transport["kind"] == "copyback"
        assert report.transport["pushes"] >= 2  # spec staged to both hosts
        assert report.transport["pulls"] > 0
        assert report.transport["failures"] == 0
        assert set(report.hosts) == {"alpha", "beta"}
        completed = sum(h["completed"] for h in report.hosts.values())
        assert completed == len([s for s in report.shards if s.chains > 0])
        # Worker artifacts live in the host dirs, results land locally.
        assert list(work_dir.glob("shard*.json"))
        text = report.format_summary()
        assert "@alpha" in text or "@beta" in text
        assert "transport:" in text
        backend.assert_all_reaped()

    def test_dropped_copy_back_recovers_through_relaunch(
        self, tmp_path, single_run
    ):
        """Every retry of shard 0's result copy-back is dropped once
        (count=3 outlasts the transport's 2 retries): the attempt is
        judged ``transport``, the relaunch's pull goes through clean."""
        backend = _TwoHostBackend()
        work_dir, transport = copyback(tmp_path)
        report = dispatch(
            tiny_spec(), work_dir, backend=backend, transport=transport,
            faults=FaultPlan([
                TransportFault(
                    kind="drop", op="pull", name="shard0000.json", count=3,
                ),
            ]),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["transport", "completed"]
        assert victim.transport_failures >= 1
        assert victim.resumed_attempts == 1  # checkpoint still came home
        assert report.transport["failures"] >= 1
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_blackholed_host_is_quarantined_and_work_rescheduled(
        self, tmp_path, single_run
    ):
        """Host beta drops off the network mid-run (its heartbeat pulls
        blackhole): after ``host_blacklist_after`` consecutive transport
        failures beta is quarantined, its in-flight shard evicted and
        rescheduled onto alpha, and the union is still bit-identical."""
        backend = _TwoHostBackend()
        work_dir, transport = copyback(tmp_path)
        report = dispatch(
            tiny_spec(), work_dir, backend=backend, transport=transport,
            faults=FaultPlan([
                TransportFault(
                    kind="blackhole", host="beta", op="pull",
                    name="*.hb.json",
                ),
            ]),
            host_blacklist_after=2, host_cooldown=300.0,
        )
        assert report.result.metrics() == single_run.metrics()
        assert report.transport["blackholed"] == ["beta"]
        assert report.hosts["beta"]["quarantines"] == 1
        assert report.quarantines == 1
        assert report.evictions == 1
        # The evicted shard was healthy: no failed attempt burned, and
        # its relaunch landed on the surviving host.
        victim = next(
            s for s in report.shards if "evicted" in s.attempt_outcomes
        )
        assert victim.attempt_outcomes == ["evicted", "completed"]
        assert victim.attempt_hosts == ["beta", "alpha"]
        assert victim.failed_attempts == 0
        # Everything completed on alpha; beta completed nothing.
        assert report.hosts["beta"]["completed"] == 0
        assert report.hosts["alpha"]["completed"] == len(
            [s for s in report.shards if s.chains > 0]
        )
        text = report.format_summary()
        assert "host beta:" in text and "quarantine" in text
        backend.assert_all_reaped()


@pytest.mark.transport
class TestHostFailureDomainPolicy:
    """Deterministic host-health pieces, no subprocesses."""

    def test_every_host_gone_is_one_clear_error(self, tmp_path):
        """A single host that blackholes and then dies on probation must
        surface as one DispatchError naming the quarantined fleet --
        not as per-shard attempt exhaustion."""
        work_dir, transport = copyback(tmp_path, hosts=("local",))
        dispatcher = CampaignDispatcher(
            tiny_spec(), shards=1, workers=1, work_dir=work_dir,
            transport=transport,
            faults=FaultPlan([TransportFault(kind="blackhole", op="push")]),
            host_blacklist_after=1, host_cooldown=0.05, max_attempts=5,
        )
        with pytest.raises(DispatchError, match="every host is quarantined"):
            dispatcher.run()
        # The staging failures never even launched a child.
        assert dispatcher.host_health.state("local").dead

    def test_blacklist_disabled_by_default(self):
        hh = HostHealth(["a"])
        for _ in range(10):
            assert hh.record_failure("a", "dead", now=0.0) is False
        assert hh.usable("a", 0.0)
        assert hh.state("a").failures == 10
        assert hh.state("a").quarantines == 0

    def test_quarantine_cooldown_probation_death(self):
        hh = HostHealth(["a", "b"], blacklist_after=2, cooldown=10.0)
        assert hh.record_failure("a", "dead", 0.0) is False
        assert hh.record_failure("a", "stalled", 1.0) is True  # quarantined
        assert not hh.usable("a", 5.0)
        assert hh.usable("b", 5.0) and hh.any_usable(5.0)
        assert hh.next_readmission() == pytest.approx(11.0)
        # Cooldown over: usable again, but only on probation.
        assert hh.usable("a", 11.5)
        assert hh.probationary("a", 11.5)
        hh.on_launch("a", 11.5)
        st = hh.state("a")
        assert st.probation and st.readmissions == 1
        # A probation failure is terminal for the host.
        assert hh.record_failure("a", "timeout", 12.0) is True
        assert st.dead
        assert not hh.usable("a", 1e9)
        assert not hh.all_dead()  # b still lives
        assert hh.next_readmission() is None
        # Further failures on a dead host change nothing.
        assert hh.record_failure("a", "dead", 13.0) is False

    def test_success_resets_consecutive_failures_and_probation(self):
        hh = HostHealth(["a"], blacklist_after=3, cooldown=1.0)
        hh.record_failure("a", "dead", 0.0)
        hh.record_failure("a", "dead", 0.0)
        hh.record_success("a")
        # The streak restarted: two more failures stay short of three.
        assert hh.record_failure("a", "dead", 1.0) is False
        assert hh.record_failure("a", "dead", 1.0) is False
        assert hh.state("a").completed == 1
        assert hh.state("a").failures == 4

    def test_summary_separates_transport_failures(self):
        hh = HostHealth(["a"], blacklist_after=None)
        hh.record_failure("a", "transport", 0.0)
        hh.record_failure("a", "dead", 0.0)
        hh.record_success("a")
        assert hh.summary()["a"] == {
            "completed": 1,
            "failures": 2,
            "transport_failures": 1,
            "quarantines": 0,
            "readmissions": 0,
            "dead": False,
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one host"):
            HostHealth([])
        with pytest.raises(ValueError, match="blacklist_after"):
            HostHealth(["a"], blacklist_after=0)
        with pytest.raises(ValueError, match="cooldown"):
            HostHealth(["a"], cooldown=-1.0)

    def test_transport_must_cover_backend_hosts(self, tmp_path):
        """A copy-back transport that does not know a pinned host is a
        deployment bug and fails at construction, not mid-dispatch."""
        work_dir, transport = copyback(tmp_path, hosts=("alpha",))
        with pytest.raises(ValueError, match="knows no work dir"):
            CampaignDispatcher(
                tiny_spec(), shards=2, workers=2, work_dir=work_dir,
                backend=_TwoHostBackend(), transport=transport,
            )

    def test_transport_faults_on_shared_dir_rejected(self, tmp_path):
        """Arming transfer faults on the zero-copy transport would mean
        they silently never fire; the dispatcher refuses up front."""
        with pytest.raises(ValueError, match="CopyBackTransport"):
            CampaignDispatcher(
                tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
                transport=SharedDirTransport(tmp_path),
                faults=FaultPlan([TransportFault(kind="drop")]),
            )

    def test_multi_host_summary_annotates_hosts(self):
        result = Campaign(tiny_spec()).run(workers=1)
        shards = [
            ShardRecord(
                shard=0, chains=2, expected_cells=6, estimated_cost=1.0,
                attempts=2, attempt_walls=[0.8, 0.6],
                attempt_outcomes=["evicted", "completed"],
                attempt_hosts=["beta", "alpha"],
            ),
        ]
        report = DispatchReport(
            result=result, shards=shards, workers=2, wall_time_s=2.0,
            hosts={
                "alpha": {"completed": 1, "failures": 0, "quarantines": 0},
                "beta": {
                    "completed": 0, "failures": 3,
                    "quarantines": 1, "dead": True,
                },
            },
            transport={
                "kind": "copyback", "pushes": 4, "pulls": 9,
                "retries": 2, "failures": 3,
            },
        )
        assert report.quarantines == 1
        assert report.evictions == 1
        text = report.format_summary()
        assert "shard 0: evicted 0.80s @beta, completed 0.60s @alpha" in text
        assert "host alpha: 1 completed, 0 failure(s)" in text
        assert "host beta: 0 completed, 3 failure(s), 1 quarantine(s) "\
            "[dead]" in text
        assert "transport: 4 push(es), 9 pull(s), 2 retry(ies), "\
            "3 failure(s)" in text


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(shard=0, kind="explode")

    def test_field_validation(self):
        with pytest.raises(ValueError, match="shard"):
            Fault(shard=-1, kind="kill")
        with pytest.raises(ValueError, match="at_cell"):
            Fault(shard=0, kind="kill", at_cell=-1)
        with pytest.raises(ValueError, match="1-based"):
            Fault(shard=0, kind="kill", attempt=0)

    def test_for_worker_filters_by_shard_and_attempt(self):
        plan = FaultPlan([
            Fault(shard=0, kind="kill", at_cell=2, attempt=1),
            Fault(shard=0, kind="exit", at_cell=4, attempt=2),
            Fault(shard=1, kind="hang", attempt=None),
        ])
        first = json.loads(plan.for_worker(0, 1))
        assert [f["kind"] for f in first] == ["kill"]
        second = json.loads(plan.for_worker(0, 2))
        assert [f["kind"] for f in second] == ["exit"]
        assert plan.for_worker(0, 3) is None
        # attempt=None fires on every attempt.
        for attempt in (1, 2, 7):
            assert json.loads(plan.for_worker(1, attempt))
        assert plan.for_worker(2, 1) is None

    def test_worker_faults_round_trip_through_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert WorkerFaults.from_env() is None
        plan = FaultPlan([Fault(shard=0, kind="kill", at_cell=3)])
        monkeypatch.setenv(FAULT_ENV, plan.for_worker(0, 1))
        armed = WorkerFaults.from_env()
        assert armed is not None
        assert armed.next_trigger() == 3

    def test_malformed_env_plan_fails_loudly(self, monkeypatch):
        # A broken harness must not silently run a clean campaign.
        monkeypatch.setenv(FAULT_ENV, '{"kind": "kill"}')
        with pytest.raises(ValueError, match="JSON list"):
            WorkerFaults.from_env()

    def test_clip_lands_on_exact_boundary(self):
        armed = WorkerFaults([{"kind": "kill", "at_cell": 5, "exit_code": 1}])
        batch = list(range(10))
        assert armed.clip(batch, 0) == batch[:5]
        assert armed.clip(batch, 3) == batch[:2]
        assert armed.clip(batch[:3], 0) == batch[:3]  # boundary not reached
        # corrupt_output never clips: it fires at save time.
        saver = WorkerFaults([{"kind": "corrupt_output"}])
        assert saver.next_trigger() is None
        assert saver.clip(batch, 0) == batch
        assert saver.corrupts_output()


class TestRecoveryPolicy:
    """Deterministic policy pieces, no subprocesses."""

    def test_backoff_is_deterministic_and_bounded(self, tmp_path):
        spec = tiny_spec()
        make = lambda: CampaignDispatcher(
            spec, shards=2, workers=1, work_dir=tmp_path,
            backoff_base=0.5, backoff_max=2.0,
        )
        a, b = make(), make()
        delays_a = [a._backoff_delay(s, k) for s in (0, 1) for k in (1, 2, 3, 9)]
        delays_b = [b._backoff_delay(s, k) for s in (0, 1) for k in (1, 2, 3, 9)]
        assert delays_a == delays_b  # seeded jitter: a drill replays exactly
        assert all(0.5 <= d <= 2.0 for d in delays_a)
        # Exponential until the cap: attempt 2's raw term alone (2x base)
        # exceeds attempt 1's base + jitter.
        assert a._backoff_delay(0, 2) > a._backoff_delay(0, 1)
        assert a._backoff_delay(0, 9) == 2.0
        # Disabled by default: no delay, nothing recorded.
        off = CampaignDispatcher(spec, shards=2, workers=1, work_dir=tmp_path)
        assert off._backoff_delay(0, 3) == 0.0

    def test_liveness_classification(self, tmp_path):
        spec = tiny_spec()
        dispatcher = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path, stall_after=10.0,
        )
        tmp_path.mkdir(exist_ok=True)
        hb_path = dispatcher._heartbeat_path(0)
        record = ShardRecord(
            shard=0, chains=1, expected_cells=3, estimated_cost=1.0,
        )
        active = _Running(
            record, proc=None, slot=0, started=0.0,
            advance_t=0.0, beat_t=0.0,
        )
        # Counter advances: progressing, at any in-window time.
        hb_path.write_text(json.dumps({"cells": 1, "seq": 1}))
        assert dispatcher._liveness(active, now=5.0) == "progressing"
        # Counter frozen, seq beating: stalled once the window passes.
        hb_path.write_text(json.dumps({"cells": 1, "seq": 2}))
        assert dispatcher._liveness(active, now=9.0) == "progressing"
        hb_path.write_text(json.dumps({"cells": 1, "seq": 3}))
        assert dispatcher._liveness(active, now=16.0) == "stalled"
        # No beats at all past the window: dead.
        assert dispatcher._liveness(active, now=30.0) == "dead"
        # A fresh counter advance resets everything.
        hb_path.write_text(json.dumps({"cells": 2, "seq": 4}))
        assert dispatcher._liveness(active, now=31.0) == "progressing"

    def test_liveness_reads_are_crash_consistent(self, tmp_path):
        dispatcher = CampaignDispatcher(
            tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
            stall_after=10.0,
        )
        tmp_path.mkdir(exist_ok=True)
        assert dispatcher._read_heartbeat(0) is None  # absent
        hb = dispatcher._heartbeat_path(0)
        for garbage in ('{"cells": 3, "se', "[]", '"x"', '{"cells": "n"}'):
            hb.write_text(garbage)  # torn / wrong shape / wrong types
            assert dispatcher._read_heartbeat(0) is None
        hb.write_text(json.dumps({"cells": 3, "seq": 7, "time": 0.0}))
        assert dispatcher._read_heartbeat(0) == {"cells": 3, "seq": 7}

    def test_attempt_budget_derivation(self, tmp_path):
        spec = tiny_spec()
        record = ShardRecord(
            shard=0, chains=2, expected_cells=6, estimated_cost=4.0,
        )
        flat = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path, shard_timeout=9.0,
            timeout_factor=2.0, cost_manifest={0: 1.0},
        )
        assert flat._attempt_budget(record) == 9.0  # flat wins
        derived = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path,
            timeout_factor=2.0, timeout_floor=5.0, cost_manifest={0: 1.0},
        )
        assert derived._attempt_budget(record) == 2.0 * 4.0 + 5.0
        unbounded = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path,
        )
        assert unbounded._attempt_budget(record) is None

    def test_constructor_validation(self, tmp_path):
        spec = tiny_spec()
        for kwargs in (
            {"stall_after": 0.0},
            {"heartbeat_interval": 0.0},
            {"shard_timeout": -1.0},
            {"timeout_factor": 0.0},
            {"timeout_floor": -0.1},
            {"backoff_base": -1.0},
            {"backoff_max": -1.0},
            {"split_after": -1.0},
        ):
            with pytest.raises(ValueError):
                CampaignDispatcher(
                    spec, shards=1, workers=1, work_dir=tmp_path, **kwargs
                )

    def test_heartbeat_interval_capped_by_stall_window(self, tmp_path):
        dispatcher = CampaignDispatcher(
            tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
            stall_after=2.0, heartbeat_interval=5.0,
        )
        assert dispatcher.heartbeat_interval == pytest.approx(0.5)
        # And the adaptive poll ceiling follows the effective interval.
        assert dispatcher.poll_max == pytest.approx(0.5)

    def test_owned_heartbeat_and_chains_flags_rejected(self, tmp_path):
        for bad in (["--heartbeat", "x"], ["--chains", "1"],
                    ["--heartbeat-interval=2"]):
            with pytest.raises(ValueError, match="may not set"):
                CampaignDispatcher(
                    tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
                    shard_args=bad,
                )

    def test_report_summary_shows_attempt_history(self):
        result = Campaign(tiny_spec()).run(workers=1)
        shards = [
            ShardRecord(
                shard=0, chains=2, expected_cells=6, estimated_cost=1.0,
                attempts=2, attempt_walls=[1.5, 0.5],
                attempt_outcomes=["stalled", "completed"],
                backoff_s=[0.25],
            ),
            ShardRecord(
                shard=3, chains=1, expected_cells=3, estimated_cost=0.5,
                attempts=1, parent=0, attempt_walls=[0.4],
                attempt_outcomes=["completed"],
            ),
        ]
        report = DispatchReport(
            result=result, shards=shards, workers=2, wall_time_s=2.0,
        )
        assert report.splits == 1
        assert report.relaunches == 1
        text = report.format_summary()
        assert "1 relaunch(es), 1 split(s)" in text
        assert "shard 0: stalled 1.50s, completed 0.50s, backoff 0.25s" in text
        assert "shard 3: completed 0.40s (split from shard 0)" in text
