"""Fault-injection drills for the dispatcher's liveness + recovery layer.

The ISSUE 7 acceptance bar: every :class:`FaultPlan` scenario -- kill at
each cell boundary, hang forever, heartbeat drop, corrupt output JSON,
exit nonzero -- must converge to a merged result bit-identical to the
unsharded single-process run (counter pins included), leave zero child
processes behind, and a hung shard must be detected and relaunched
within one ``stall_after`` window.  Straggler splitting and graceful
SIGINT shutdown ride the same harness.

The subprocess scenarios are ``dist``-marked (multi-process, seconds
each) and additionally ``faults``-marked so CI can run them as a
dedicated leg under a hard timeout; the policy/unit tests at the bottom
run everywhere.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.batch import (
    Campaign,
    CampaignDispatcher,
    CampaignResult,
    CampaignSpec,
    DispatchError,
    Fault,
    FaultPlan,
    LocalBackend,
)
from repro.batch.dispatch import DispatchReport, ShardRecord, _Running
from repro.batch.faults import FAULT_ENV, WorkerFaults


def tiny_spec(**overrides) -> CampaignSpec:
    """Two chains of three cells each: every boundary is enumerable."""
    kwargs = dict(
        grid={"utilization": (0.3, 0.6, 0.9)},
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("gauss_seidel",),
        systems_per_cell=2,
        seed=11,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(scope="module")
def single_run() -> CampaignResult:
    return Campaign(tiny_spec()).run(workers=1)


class _RecordingBackend(LocalBackend):
    """Remember every child Popen so tests can assert none is left alive."""

    def __init__(self):
        self.procs: list[subprocess.Popen] = []

    def launch(self, argv, *, slot, log_path, env=None):
        proc = super().launch(argv, slot=slot, log_path=log_path, env=env)
        self.procs.append(proc)
        return proc

    def assert_all_reaped(self):
        lingering = [p.pid for p in self.procs if p.poll() is None]
        assert not lingering, f"leftover child processes: {lingering}"


def dispatch(spec, work_dir, faults=None, backend=None, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("checkpoint_every", 1)
    return CampaignDispatcher(
        spec, work_dir=work_dir, faults=faults, backend=backend, **kwargs
    ).run()


pytestmark = pytest.mark.faults


@pytest.mark.dist
class TestFaultMatrix:
    """Each injected failure recovers to the bit-identical union."""

    @pytest.mark.parametrize("at_cell", [0, 1, 2, 3])
    def test_kill_at_each_cell_boundary(self, tmp_path, single_run, at_cell):
        """SIGKILL after exactly N cells (every boundary of the 3-cell
        shard, including before-the-first and after-the-last)."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="kill", at_cell=at_cell)]),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempts == 2
        assert victim.attempt_outcomes == ["failed", "completed"]
        # Any checkpointed progress is recovered through --resume.
        assert victim.resumed_attempts == (1 if at_cell > 0 else 0)
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_hang_detected_as_stalled_within_one_window(
        self, tmp_path, single_run
    ):
        """A wedged-but-alive worker keeps beating with a frozen counter:
        the dispatcher must classify *stalled* (not dead, not slow) and
        relaunch within one stall window."""
        stall_after = 3.0
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="hang", at_cell=1)]),
            stall_after=stall_after, heartbeat_interval=0.2,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["stalled", "completed"]
        # Detection latency: the hung attempt's wall is its short healthy
        # prefix plus at most one stall window plus poll slack -- far
        # under two windows.
        assert victim.attempt_walls[0] < 2 * stall_after
        assert victim.resumed_attempts == 1  # cell 1 came from checkpoint
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_heartbeat_drop_detected_as_dead(self, tmp_path, single_run):
        """Silence (no beats at all) classifies as *dead*."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan(
                [Fault(shard=1, kind="drop_heartbeats", at_cell=1)]
            ),
            stall_after=3.0, heartbeat_interval=0.2,
        )
        victim = next(s for s in report.shards if s.shard == 1)
        assert victim.attempt_outcomes == ["dead", "completed"]
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_corrupt_output_is_a_miss_not_a_traceback(
        self, tmp_path, single_run
    ):
        """A shard that exits 0 leaving truncated JSON: the
        crash-consistent readers treat the file as absent and relaunch
        (resuming from the intact checkpoint, never the damaged file)."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="corrupt_output")]),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempts == 2
        assert victim.resumed_attempts == 1
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_flaky_exit_nonzero_then_succeeds(self, tmp_path, single_run):
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan(
                [Fault(shard=0, kind="exit", at_cell=2, exit_code=5)]
            ),
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["failed", "completed"]
        assert report.relaunches == 1
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_shard_timeout_kills_hung_worker(self, tmp_path, single_run):
        """With liveness off, the flat wall budget is the backstop."""
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="hang", at_cell=1)]),
            shard_timeout=3.0,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert victim.attempt_outcomes == ["timeout", "completed"]
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()

    def test_permanently_sick_shard_exhausts_attempts(self, tmp_path):
        """attempt=None makes the fault fire on every launch; the
        dispatcher must give up loudly after max_attempts."""
        backend = _RecordingBackend()
        with pytest.raises(DispatchError, match="failed 2 attempt"):
            dispatch(
                tiny_spec(), tmp_path, backend=backend,
                faults=FaultPlan(
                    [Fault(shard=0, kind="kill", at_cell=0, attempt=None)]
                ),
                max_attempts=2,
            )
        backend.assert_all_reaped()

    def test_backoff_delays_are_recorded(self, tmp_path, single_run):
        backend = _RecordingBackend()
        report = dispatch(
            tiny_spec(), tmp_path, backend=backend,
            faults=FaultPlan([Fault(shard=0, kind="exit", at_cell=1)]),
            backoff_base=0.2, backoff_max=1.0,
        )
        victim = next(s for s in report.shards if s.shard == 0)
        assert len(victim.backoff_s) == 1
        assert 0.2 <= victim.backoff_s[0] <= 0.4  # base + jitter in [0, base)
        assert report.result.metrics() == single_run.metrics()
        backend.assert_all_reaped()


@pytest.mark.dist
class TestStragglerSplitting:
    def test_split_union_bit_identical(self, tmp_path):
        """One shard holding every chain, one idle slot: the straggler's
        unfinished chains are re-partitioned onto fresh sub-shards and
        the union still equals the single run bit for bit."""
        spec = tiny_spec(systems_per_cell=4)  # 4 chains to split across
        single = Campaign(spec).run(workers=1)
        backend = _RecordingBackend()
        report = dispatch(
            spec, tmp_path, backend=backend,
            shards=1, workers=2, split_after=0.2,
        )
        assert report.splits >= 1
        parent = next(s for s in report.shards if s.shard == 0)
        assert "split" in parent.attempt_outcomes
        subs = [s for s in report.shards if s.parent is not None]
        assert subs and all(s.parent == 0 for s in subs)
        # The sub-shards partition the parent's chains exactly.
        covered = sorted(i for s in subs for i in s.chain_indices)
        assert covered == parent.chain_indices
        # A split is elasticity, not a failure: no relaunch counted.
        assert report.relaunches == 0
        assert report.result.metrics() == single.metrics()
        backend.assert_all_reaped()

    def test_single_unfinished_chain_is_not_split(self, tmp_path):
        """A shard with one chain cannot shrink; it must never be shot
        by the splitter."""
        spec = tiny_spec(systems_per_cell=1)  # one chain total
        single = Campaign(spec).run(workers=1)
        backend = _RecordingBackend()
        report = dispatch(
            spec, tmp_path, backend=backend,
            shards=1, workers=2, split_after=0.0,
        )
        assert report.splits == 0
        assert report.relaunches == 0
        assert report.result.metrics() == single.metrics()
        backend.assert_all_reaped()


@pytest.mark.dist
class TestGracefulShutdown:
    def test_sigint_terminates_children_and_leaves_resumable_dir(
        self, tmp_path
    ):
        """SIGINT mid-dispatch: exit nonzero, merged partial saved, work
        dir resumable, zero orphaned subprocesses."""
        work_dir = tmp_path / "wd"
        env = dict(os.environ)
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable, "-m", "repro", "campaign-dispatch",
            "--grid", "utilization=0.2,0.4,0.5,0.6,0.7,0.8,0.9",
            "--transactions", "2", "--tasks", "1,2", "--platforms", "2",
            "--systems", "8", "--methods", "gauss_seidel", "--seed", "5",
            "--workers", "2", "--shards", "4", "--checkpoint-every", "1",
            "--work-dir", str(work_dir),
        ]
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if (work_dir / "spec.json").exists() and list(
                    work_dir.glob("*.hb.json")
                ):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.1)
            assert proc.poll() is None, proc.communicate()
            time.sleep(0.3)  # let some shard work happen
            proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 1
        assert "interrupted" in err
        assert "resumable" in err
        # The merged partial is a loadable result for the same spec.
        partial = CampaignResult.load_json(work_dir / "partial.json")
        spec_dict = json.loads((work_dir / "spec.json").read_text())
        assert partial.spec == spec_dict
        # Zero orphans: no process still references this dispatch's spec.
        spec_path = str(work_dir / "spec.json")
        lingering = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit():
                continue
            try:
                cmdline = (
                    Path(f"/proc/{pid}/cmdline")
                    .read_bytes()
                    .decode(errors="replace")
                    .replace("\0", " ")
                )
            except OSError:
                continue
            if spec_path in cmdline:
                lingering.append((pid, cmdline))
        assert not lingering, lingering


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(shard=0, kind="explode")

    def test_field_validation(self):
        with pytest.raises(ValueError, match="shard"):
            Fault(shard=-1, kind="kill")
        with pytest.raises(ValueError, match="at_cell"):
            Fault(shard=0, kind="kill", at_cell=-1)
        with pytest.raises(ValueError, match="1-based"):
            Fault(shard=0, kind="kill", attempt=0)

    def test_for_worker_filters_by_shard_and_attempt(self):
        plan = FaultPlan([
            Fault(shard=0, kind="kill", at_cell=2, attempt=1),
            Fault(shard=0, kind="exit", at_cell=4, attempt=2),
            Fault(shard=1, kind="hang", attempt=None),
        ])
        first = json.loads(plan.for_worker(0, 1))
        assert [f["kind"] for f in first] == ["kill"]
        second = json.loads(plan.for_worker(0, 2))
        assert [f["kind"] for f in second] == ["exit"]
        assert plan.for_worker(0, 3) is None
        # attempt=None fires on every attempt.
        for attempt in (1, 2, 7):
            assert json.loads(plan.for_worker(1, attempt))
        assert plan.for_worker(2, 1) is None

    def test_worker_faults_round_trip_through_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert WorkerFaults.from_env() is None
        plan = FaultPlan([Fault(shard=0, kind="kill", at_cell=3)])
        monkeypatch.setenv(FAULT_ENV, plan.for_worker(0, 1))
        armed = WorkerFaults.from_env()
        assert armed is not None
        assert armed.next_trigger() == 3

    def test_malformed_env_plan_fails_loudly(self, monkeypatch):
        # A broken harness must not silently run a clean campaign.
        monkeypatch.setenv(FAULT_ENV, '{"kind": "kill"}')
        with pytest.raises(ValueError, match="JSON list"):
            WorkerFaults.from_env()

    def test_clip_lands_on_exact_boundary(self):
        armed = WorkerFaults([{"kind": "kill", "at_cell": 5, "exit_code": 1}])
        batch = list(range(10))
        assert armed.clip(batch, 0) == batch[:5]
        assert armed.clip(batch, 3) == batch[:2]
        assert armed.clip(batch[:3], 0) == batch[:3]  # boundary not reached
        # corrupt_output never clips: it fires at save time.
        saver = WorkerFaults([{"kind": "corrupt_output"}])
        assert saver.next_trigger() is None
        assert saver.clip(batch, 0) == batch
        assert saver.corrupts_output()


class TestRecoveryPolicy:
    """Deterministic policy pieces, no subprocesses."""

    def test_backoff_is_deterministic_and_bounded(self, tmp_path):
        spec = tiny_spec()
        make = lambda: CampaignDispatcher(
            spec, shards=2, workers=1, work_dir=tmp_path,
            backoff_base=0.5, backoff_max=2.0,
        )
        a, b = make(), make()
        delays_a = [a._backoff_delay(s, k) for s in (0, 1) for k in (1, 2, 3, 9)]
        delays_b = [b._backoff_delay(s, k) for s in (0, 1) for k in (1, 2, 3, 9)]
        assert delays_a == delays_b  # seeded jitter: a drill replays exactly
        assert all(0.5 <= d <= 2.0 for d in delays_a)
        # Exponential until the cap: attempt 2's raw term alone (2x base)
        # exceeds attempt 1's base + jitter.
        assert a._backoff_delay(0, 2) > a._backoff_delay(0, 1)
        assert a._backoff_delay(0, 9) == 2.0
        # Disabled by default: no delay, nothing recorded.
        off = CampaignDispatcher(spec, shards=2, workers=1, work_dir=tmp_path)
        assert off._backoff_delay(0, 3) == 0.0

    def test_liveness_classification(self, tmp_path):
        spec = tiny_spec()
        dispatcher = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path, stall_after=10.0,
        )
        tmp_path.mkdir(exist_ok=True)
        hb_path = dispatcher._heartbeat_path(0)
        record = ShardRecord(
            shard=0, chains=1, expected_cells=3, estimated_cost=1.0,
        )
        active = _Running(
            record, proc=None, slot=0, started=0.0,
            advance_t=0.0, beat_t=0.0,
        )
        # Counter advances: progressing, at any in-window time.
        hb_path.write_text(json.dumps({"cells": 1, "seq": 1}))
        assert dispatcher._liveness(active, now=5.0) == "progressing"
        # Counter frozen, seq beating: stalled once the window passes.
        hb_path.write_text(json.dumps({"cells": 1, "seq": 2}))
        assert dispatcher._liveness(active, now=9.0) == "progressing"
        hb_path.write_text(json.dumps({"cells": 1, "seq": 3}))
        assert dispatcher._liveness(active, now=16.0) == "stalled"
        # No beats at all past the window: dead.
        assert dispatcher._liveness(active, now=30.0) == "dead"
        # A fresh counter advance resets everything.
        hb_path.write_text(json.dumps({"cells": 2, "seq": 4}))
        assert dispatcher._liveness(active, now=31.0) == "progressing"

    def test_liveness_reads_are_crash_consistent(self, tmp_path):
        dispatcher = CampaignDispatcher(
            tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
            stall_after=10.0,
        )
        tmp_path.mkdir(exist_ok=True)
        assert dispatcher._read_heartbeat(0) is None  # absent
        hb = dispatcher._heartbeat_path(0)
        for garbage in ('{"cells": 3, "se', "[]", '"x"', '{"cells": "n"}'):
            hb.write_text(garbage)  # torn / wrong shape / wrong types
            assert dispatcher._read_heartbeat(0) is None
        hb.write_text(json.dumps({"cells": 3, "seq": 7, "time": 0.0}))
        assert dispatcher._read_heartbeat(0) == {"cells": 3, "seq": 7}

    def test_attempt_budget_derivation(self, tmp_path):
        spec = tiny_spec()
        record = ShardRecord(
            shard=0, chains=2, expected_cells=6, estimated_cost=4.0,
        )
        flat = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path, shard_timeout=9.0,
            timeout_factor=2.0, cost_manifest={0: 1.0},
        )
        assert flat._attempt_budget(record) == 9.0  # flat wins
        derived = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path,
            timeout_factor=2.0, timeout_floor=5.0, cost_manifest={0: 1.0},
        )
        assert derived._attempt_budget(record) == 2.0 * 4.0 + 5.0
        unbounded = CampaignDispatcher(
            spec, shards=1, workers=1, work_dir=tmp_path,
        )
        assert unbounded._attempt_budget(record) is None

    def test_constructor_validation(self, tmp_path):
        spec = tiny_spec()
        for kwargs in (
            {"stall_after": 0.0},
            {"heartbeat_interval": 0.0},
            {"shard_timeout": -1.0},
            {"timeout_factor": 0.0},
            {"timeout_floor": -0.1},
            {"backoff_base": -1.0},
            {"backoff_max": -1.0},
            {"split_after": -1.0},
        ):
            with pytest.raises(ValueError):
                CampaignDispatcher(
                    spec, shards=1, workers=1, work_dir=tmp_path, **kwargs
                )

    def test_heartbeat_interval_capped_by_stall_window(self, tmp_path):
        dispatcher = CampaignDispatcher(
            tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
            stall_after=2.0, heartbeat_interval=5.0,
        )
        assert dispatcher.heartbeat_interval == pytest.approx(0.5)
        # And the adaptive poll ceiling follows the effective interval.
        assert dispatcher.poll_max == pytest.approx(0.5)

    def test_owned_heartbeat_and_chains_flags_rejected(self, tmp_path):
        for bad in (["--heartbeat", "x"], ["--chains", "1"],
                    ["--heartbeat-interval=2"]):
            with pytest.raises(ValueError, match="may not set"):
                CampaignDispatcher(
                    tiny_spec(), shards=1, workers=1, work_dir=tmp_path,
                    shard_args=bad,
                )

    def test_report_summary_shows_attempt_history(self):
        result = Campaign(tiny_spec()).run(workers=1)
        shards = [
            ShardRecord(
                shard=0, chains=2, expected_cells=6, estimated_cost=1.0,
                attempts=2, attempt_walls=[1.5, 0.5],
                attempt_outcomes=["stalled", "completed"],
                backoff_s=[0.25],
            ),
            ShardRecord(
                shard=3, chains=1, expected_cells=3, estimated_cost=0.5,
                attempts=1, parent=0, attempt_walls=[0.4],
                attempt_outcomes=["completed"],
            ),
        ]
        report = DispatchReport(
            result=result, shards=shards, workers=2, wall_time_s=2.0,
        )
        assert report.splits == 1
        assert report.relaunches == 1
        text = report.format_summary()
        assert "1 relaunch(es), 1 split(s)" in text
        assert "shard 0: stalled 1.50s, completed 0.50s, backoff 0.25s" in text
        assert "shard 3: completed 0.40s (split from shard 0)" in text
