"""Unit tests for the Task model."""

import pytest

from repro.model.task import Task


def make(**kw):
    base = dict(wcet=2.0, platform=0, priority=1)
    base.update(kw)
    return Task(**base)


class TestConstruction:
    def test_defaults(self):
        t = make()
        assert t.bcet == 2.0  # defaults to wcet
        assert t.offset == 0.0
        assert t.jitter == 0.0
        assert t.blocking == 0.0

    def test_explicit_bcet(self):
        assert make(bcet=1.0).bcet == 1.0

    def test_rejects_bcet_above_wcet(self):
        with pytest.raises(ValueError, match="bcet"):
            make(bcet=3.0)

    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ValueError):
            make(wcet=0.0)

    def test_rejects_negative_platform(self):
        with pytest.raises(ValueError):
            make(platform=-1)

    def test_rejects_bool_platform(self):
        with pytest.raises(TypeError):
            make(platform=True)

    def test_rejects_float_priority(self):
        with pytest.raises(TypeError):
            make(priority=1.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            make(jitter=-0.1)

    def test_coerces_to_float(self):
        t = make(wcet=2, offset=1, jitter=3)
        assert isinstance(t.wcet, float)
        assert isinstance(t.offset, float)
        assert isinstance(t.jitter, float)


class TestWithUpdates:
    def test_returns_modified_copy(self):
        t = make()
        t2 = t.with_updates(jitter=5.0)
        assert t.jitter == 0.0
        assert t2.jitter == 5.0
        assert t2.wcet == t.wcet

    def test_revalidates(self):
        with pytest.raises(ValueError):
            make().with_updates(wcet=-1.0)


class TestScaling:
    def test_scaled_wcet(self):
        assert make().scaled_wcet(0.5) == 4.0

    def test_scaled_wcet_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            make().scaled_wcet(0.0)

    def test_scaled_bcet_paper_formula(self):
        # C=0.8, alpha=0.2, beta=1: 0.8/0.2 - 1 = 3 (Table 1 of the paper).
        t = make(wcet=1.0, bcet=0.8)
        assert t.scaled_bcet(0.2, 1.0) == pytest.approx(3.0)

    def test_scaled_bcet_clamps_at_zero(self):
        t = make(wcet=1.0, bcet=0.25)
        # 0.25/0.4 - 1 < 0 -> 0 (tau_2_1 in the paper).
        assert t.scaled_bcet(0.4, 1.0) == 0.0

    def test_scaled_bcet_rejects_negative_burst(self):
        with pytest.raises(ValueError):
            make().scaled_bcet(0.5, -1.0)
