"""Tests for retained response samples and quantiles."""

import pytest

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform
from repro.sim import SimulationConfig, simulate
from repro.sim.trace import TaskStats


def system():
    hi = Transaction(period=4.0, tasks=[Task(wcet=1.0, platform=0, priority=2)])
    lo = Transaction(period=10.0, tasks=[Task(wcet=2.0, platform=0, priority=1)])
    return TransactionSystem(transactions=[hi, lo], platforms=[DedicatedPlatform()])


class TestSamples:
    def test_disabled_by_default(self):
        trace = simulate(system(), config=SimulationConfig(horizon=100.0))
        assert trace.tasks[(1, 0)].samples == []
        with pytest.raises(ValueError, match="keep_samples"):
            trace.tasks[(1, 0)].quantile(0.5)

    def test_samples_recorded(self):
        trace = simulate(
            system(), config=SimulationConfig(horizon=100.0, keep_samples=True)
        )
        st = trace.tasks[(1, 0)]
        assert len(st.samples) == st.count
        assert max(st.samples) == st.max_response
        assert min(st.samples) == st.min_response

    def test_quantiles_ordered(self):
        trace = simulate(
            system(), config=SimulationConfig(horizon=400.0, keep_samples=True)
        )
        st = trace.tasks[(1, 0)]
        q = [st.quantile(x) for x in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert q == sorted(q)
        assert q[0] == st.min_response
        assert q[-1] == st.max_response

    def test_quantile_argument_checked(self):
        st = TaskStats(keep_samples=True)
        st.record(1.0, 10.0, True)
        with pytest.raises(ValueError, match="quantile"):
            st.quantile(1.5)
