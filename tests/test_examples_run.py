"""Smoke tests: the shipped examples must run and print their headlines.

Each example is executed as a subprocess (the way a user runs it); the
slowest batch-study example is exercised through its module import path
only when explicitly requested.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "schedulable: True" in out
        assert "slack" in out

    def test_sensor_fusion(self):
        out = run_example("sensor_fusion.py")
        assert "Table 3" in out
        assert "sound = True" in out
        assert "Gantt" in out

    def test_multilevel_hierarchy(self):
        out = run_example("multilevel_hierarchy.py")
        assert "schedulable: True" in out
        assert "nested" in out

    def test_component_workflow(self):
        out = run_example("component_workflow.py")
        assert "Schedulability report" in out
        assert "SCHEDULABLE" in out
        assert "Gantt" in out

    def test_distributed_pipeline(self):
        out = run_example("distributed_pipeline.py")
        assert "schedulable: True" in out
        assert "bus utilization" in out

    def test_platform_dimensioning(self):
        out = run_example("platform_dimensioning.py")
        assert "bandwidth-minimal design" in out
        assert "composition on one CPU: feasible=True" in out
