"""API suite for the analysis service (`python -m repro serve`).

Everything runs through the in-process ASGI test client -- no live
server, no sockets -- except one test that mounts the same app on the
stdlib bridge to pin the production path.  The acceptance spine:

* a campaign submitted via POST /campaigns completes through the
  persistent pool and its merged result is *bit-identical* to the
  `python -m repro campaign` CLI run of the same spec;
* resubmitting the same spec is served warm from the content-addressed
  store (all-cells store_hits) and returns byte-identical JSON;
* queue overflow answers 429 + Retry-After while in-flight jobs finish.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.batch.campaign import Campaign, CampaignSpec
from repro.cli import main as cli_main
from repro.io import system_to_dict
from repro.paper import sensor_fusion_system
from repro.serve import (
    ServeConfig,
    canonical_result_json,
    canonical_result_payload,
    create_app,
)
from repro.serve.schemas import (
    AnalyzeRequest,
    CampaignRequest,
    ValidationError,
)
from repro.serve.testclient import TestClient

pytestmark = pytest.mark.serve

#: Small enough for milliseconds per job, structured enough to exercise
#: warm-start chains and the sweep axis.
SPEC_DICT = {
    "grid": {"utilization": [0.3, 0.6]},
    "base": {
        "n_platforms": 2,
        "n_transactions": 2,
        "tasks_per_transaction": [1, 2],
    },
    "methods": ["reduced"],
    "systems_per_cell": 2,
    "seed": 7,
}


def make_client(tmp_path=None, **overrides) -> TestClient:
    overrides.setdefault("pool_workers", 1)
    if tmp_path is not None:
        overrides.setdefault("store", str(tmp_path / "store"))
    return TestClient(create_app(ServeConfig(**overrides)))


def submit_and_wait(client, body, *, timeout=60.0):
    """POST /campaigns, poll to a terminal state, return (status, job)."""
    response = client.post("/campaigns", json=body)
    assert response.status == 202, response.body
    job_id = response.json()["id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.get(f"/campaigns/{job_id}").json()
        if status["state"] in ("done", "failed"):
            return status, job_id
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestHealthAndRouting:
    def test_healthz(self):
        with make_client() as client:
            response = client.get("/healthz")
            assert response.status == 200
            assert response.json()["status"] == "ok"
            assert response.headers["content-type"] == "application/json"

    def test_unknown_route_404(self):
        with make_client() as client:
            assert client.get("/nope").status == 404

    def test_method_not_allowed_405(self):
        with make_client() as client:
            response = client.post("/healthz", json={})
            assert response.status == 405
            assert response.headers["allow"] == "GET"
            assert client.get("/analyze").status == 405

    def test_stats_shape(self, tmp_path):
        with make_client(tmp_path) as client:
            client.get("/healthz")
            stats = client.get("/stats").json()
            assert stats["uptime_s"] >= 0
            assert stats["requests"]["GET /healthz"] == 1
            assert stats["jobs"] == {
                "queued": 0, "running": 0, "done": 0, "failed": 0,
            }
            pool = stats["pool"]
            assert pool["pool_workers"] == 1
            assert pool["busy_runners"] == 0
            assert pool["max_queue"] == 8
            assert stats["store"]["entries"] == 0

    def test_stats_store_block_absent_without_store(self):
        with make_client() as client:
            assert client.get("/stats").json()["store"] is None


class TestAnalyze:
    def test_paper_example_round_trip(self):
        system = sensor_fusion_system()
        with make_client() as client:
            response = client.post(
                "/analyze", json={"system": system_to_dict(system)}
            )
            assert response.status == 200
            body = response.json()
            assert body["schedulable"] is True
            assert body["store"] == "off"
            from repro.analysis import analyze

            reference = analyze(system)
            for i, row in enumerate(body["transactions"]):
                assert row["wcrt"] == pytest.approx(
                    reference.transaction_wcrt[i]
                )
                assert row["meets"] is True

    def test_verdict_mode(self):
        with make_client() as client:
            body = client.post(
                "/analyze",
                json={
                    "system": system_to_dict(sensor_fusion_system()),
                    "mode": "verdict",
                    "method": "exact",
                },
            ).json()
            assert body["schedulable"] is True
            assert body["mode"] == "verdict"
            assert body["method"] == "exact"

    def test_store_miss_then_hit(self, tmp_path):
        request = {"system": system_to_dict(sensor_fusion_system())}
        with make_client(tmp_path) as client:
            first = client.post("/analyze", json=request).json()
            second = client.post("/analyze", json=request).json()
            assert first["store"] == "miss"
            assert second["store"] == "hit"
            assert second["transactions"] == first["transactions"]
            stats = client.get("/stats").json()
            assert stats["analyze"] == {"requests": 2, "store_hits": 1}

    def test_cli_and_service_share_one_cache(self, tmp_path):
        """`analyze --store DIR` and the service use the same store keys."""
        system_file = tmp_path / "system.json"
        system_file.write_text(
            json.dumps(system_to_dict(sensor_fusion_system()))
        )
        store = tmp_path / "store"
        assert cli_main(
            ["analyze", str(system_file), "--store", str(store)]
        ) == 0
        with make_client(tmp_path) as client:
            body = client.post(
                "/analyze",
                json={"system": system_to_dict(sensor_fusion_system())},
            ).json()
            assert body["store"] == "hit"

    def test_validation_errors_are_aggregated(self):
        with make_client() as client:
            response = client.post(
                "/analyze",
                json={"method": "bogus", "mode": "wat", "extra": 1},
            )
            assert response.status == 400
            detail = "\n".join(response.json()["detail"])
            assert "method" in detail
            assert "mode" in detail
            assert "extra" in detail
            assert "system is required" in detail

    def test_bad_json_400(self):
        with make_client() as client:
            response = client.post("/analyze", body=b"{nope")
            assert response.status == 400
            assert client.post("/analyze").status == 400  # empty body

    def test_unparseable_system_400(self):
        with make_client() as client:
            response = client.post(
                "/analyze", json={"system": {"transactions": 3}}
            )
            assert response.status == 400
            assert "does not parse" in response.json()["detail"][0]


class TestCampaignJobs:
    def test_submit_poll_result(self, tmp_path):
        with make_client(tmp_path) as client:
            submitted = client.post("/campaigns", json={"spec": SPEC_DICT})
            assert submitted.status == 202
            handle = submitted.json()
            assert handle["state"] == "queued"
            assert handle["n_analyses"] == 4
            assert handle["links"]["status"] == f"/campaigns/{handle['id']}"
            status, job_id = submit_and_wait_from(client, handle)
            assert status["state"] == "done"
            assert status["cells"] == 4
            assert status["store"] == {"hits": 0, "misses": 4}
            result = client.get(f"/campaigns/{job_id}/result")
            assert result.status == 200
            payload = json.loads(result.body)
            assert len(payload["cells"]) == 4
            assert payload["spec"]["seed"] == 7
            # Volatile execution fields must not leak into the canonical
            # result document.
            assert "wall_time_s" not in payload
            assert all("time_s" not in cell for cell in payload["cells"])

    def test_unknown_job_404(self):
        with make_client() as client:
            assert client.get("/campaigns/job-999999").status == 404
            assert client.get("/campaigns/job-999999/result").status == 404

    def test_job_list(self, tmp_path):
        with make_client(tmp_path) as client:
            _, job_id = submit_and_wait(client, {"spec": SPEC_DICT})
            listed = client.get("/campaigns").json()["jobs"]
            assert [job["id"] for job in listed] == [job_id]

    def test_runtime_failure_reports_failed(self, tmp_path):
        # Validates (generator and methods exist) but explodes at run
        # time: random_system rejects the unknown shape parameter.
        bad = dict(SPEC_DICT, base={"no_such_shape_param": 3})
        with make_client(tmp_path) as client:
            status, job_id = submit_and_wait(client, {"spec": bad})
            assert status["state"] == "failed"
            assert "no_such_shape_param" in status["error"]
            result = client.get(f"/campaigns/{job_id}/result")
            assert result.status == 410
            stats = client.get("/stats").json()
            assert stats["jobs"]["failed"] == 1

    def test_invalid_spec_400(self):
        with make_client() as client:
            response = client.post(
                "/campaigns",
                json={"spec": dict(SPEC_DICT, methods=["no_such_method"])},
            )
            assert response.status == 400
            assert "no_such_method" in "".join(response.json()["detail"])

    def test_finished_job_retention_evicts_oldest(self, tmp_path):
        with make_client(tmp_path, max_finished_jobs=1) as client:
            _, first = submit_and_wait(client, {"spec": SPEC_DICT})
            _, second = submit_and_wait(client, {"spec": SPEC_DICT})
            assert client.get(f"/campaigns/{first}").status == 404
            assert client.get(f"/campaigns/{second}").status == 200


def submit_and_wait_from(client, handle, *, timeout=60.0):
    """Poll an already-submitted handle to a terminal state."""
    job_id = handle["id"]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.get(f"/campaigns/{job_id}").json()
        if status["state"] in ("done", "failed"):
            return status, job_id
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestWarmPathDeterminism:
    """The PR's acceptance spine: API == API (warm) == CLI, bit for bit."""

    def test_api_twice_and_cli_bit_identical(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(SPEC_DICT))
        cli_json = tmp_path / "cli.json"
        assert cli_main(
            ["campaign", "--spec", str(spec_file), "--json", str(cli_json)]
        ) == 0
        cli_bytes = canonical_result_json(json.loads(cli_json.read_text()))

        with make_client(tmp_path) as client:
            first_status, first_id = submit_and_wait(
                client, {"spec": SPEC_DICT}
            )
            second_status, second_id = submit_and_wait(
                client, {"spec": SPEC_DICT}
            )
            first = client.get(f"/campaigns/{first_id}/result").body
            second = client.get(f"/campaigns/{second_id}/result").body

        n = first_status["n_analyses"]
        assert first_status["store"] == {"hits": 0, "misses": n}
        # The warm resubmission serves every cell from the store...
        assert second_status["store"] == {"hits": n, "misses": 0}
        # ...and all three result documents agree byte for byte.
        assert first == second
        assert first == cli_bytes

    @pytest.mark.dist
    def test_pool_workers_match_inline(self, tmp_path):
        """The persistent multi-process pool changes nothing but speed."""
        inline = canonical_result_json(
            Campaign(CampaignSpec.from_dict(SPEC_DICT)).run(workers=1)
        )
        with make_client(tmp_path, pool_workers=2) as client:
            status, job_id = submit_and_wait(client, {"spec": SPEC_DICT})
            assert status["state"] == "done"
            body = client.get(f"/campaigns/{job_id}/result").body
            pool = client.get("/stats").json()["pool"]
        assert body == inline
        assert pool["executor_started"] is True

    @pytest.mark.dist
    def test_dispatch_backend_matches_pool(self, tmp_path):
        """backend=dispatch rides CampaignDispatcher, same bytes out."""
        inline = canonical_result_json(
            Campaign(CampaignSpec.from_dict(SPEC_DICT)).run(workers=1)
        )
        with make_client(
            tmp_path, dispatch_workers=2, dispatch_shards=2
        ) as client:
            status, job_id = submit_and_wait(
                client, {"spec": SPEC_DICT, "backend": "dispatch"},
                timeout=120.0,
            )
            assert status["state"] == "done", status
            assert status["backend"] == "dispatch"
            body = client.get(f"/campaigns/{job_id}/result").body
        assert body == inline


class TestAdmissionControl:
    def test_queue_overflow_429_while_inflight_finish(self, tmp_path):
        entered = threading.Event()
        release = threading.Event()

        def gate(job):
            entered.set()
            assert release.wait(timeout=60.0)

        with make_client(
            tmp_path, max_queue=1, job_runners=1, job_gate=gate,
            retry_after_s=3.0,
        ) as client:
            first = client.post("/campaigns", json={"spec": SPEC_DICT})
            assert first.status == 202
            # The runner holds the first job at the gate: it occupies the
            # runner slot, not the queue.
            assert entered.wait(timeout=30.0)
            second = client.post("/campaigns", json={"spec": SPEC_DICT})
            assert second.status == 202
            third = client.post("/campaigns", json={"spec": SPEC_DICT})
            assert third.status == 429
            assert third.headers["retry-after"] == "3"
            assert "retry later" in third.json()["error"]
            # The rejected submission never became a job.
            listed = client.get("/campaigns").json()["jobs"]
            assert len(listed) == 2
            pool = client.get("/stats").json()["pool"]
            assert pool["busy_runners"] == 1
            assert pool["queue_depth"] == 1
            # In-flight jobs finish once the stall clears.
            release.set()
            for handle in (first.json(), second.json()):
                status, _ = submit_and_wait_from(client, handle)
                assert status["state"] == "done"

    def test_result_before_done_409(self, tmp_path):
        release = threading.Event()

        def gate(job):
            assert release.wait(timeout=60.0)

        with make_client(tmp_path, job_gate=gate) as client:
            handle = client.post(
                "/campaigns", json={"spec": SPEC_DICT}
            ).json()
            response = client.get(f"/campaigns/{handle['id']}/result")
            assert response.status == 409
            assert response.json()["state"] in ("queued", "running")
            release.set()
            status, _ = submit_and_wait_from(client, handle)
            assert status["state"] == "done"

    def test_cell_ceiling_413(self, tmp_path):
        with make_client(tmp_path, max_cells_per_job=3) as client:
            response = client.post("/campaigns", json={"spec": SPEC_DICT})
            assert response.status == 413
            body = response.json()
            assert body["n_analyses"] == 4
            assert body["max_cells_per_job"] == 3
            # Refused at admission: no job handle exists.
            assert client.get("/campaigns").json()["jobs"] == []


class TestSchemas:
    def test_analyze_parse_defaults(self):
        request = AnalyzeRequest.parse(
            {"system": system_to_dict(sensor_fusion_system())}
        )
        assert request.config.method == "reduced"
        assert request.config.mode == "exact"

    def test_campaign_parse_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown campaign"):
            CampaignRequest.parse({"spec": SPEC_DICT, "shards": 4})

    def test_campaign_parse_backend(self):
        request = CampaignRequest.parse(
            {"spec": SPEC_DICT, "backend": "dispatch"}
        )
        assert request.backend == "dispatch"
        with pytest.raises(ValidationError, match="backend"):
            CampaignRequest.parse({"spec": SPEC_DICT, "backend": "cloud"})

    def test_canonical_payload_strips_volatile_fields(self):
        result = Campaign(CampaignSpec.from_dict(SPEC_DICT)).run(workers=1)
        payload = canonical_result_payload(result)
        assert set(payload) == {"spec", "shard", "truncated", "cells"}
        assert all("time_s" not in cell for cell in payload["cells"])
        # In-memory result and its JSON round trip canonicalize equally.
        round_tripped = canonical_result_payload(result.to_dict())
        assert canonical_result_json(result) == canonical_result_json(
            round_tripped
        )

    def test_canonical_payload_nonfinite_floats(self):
        document = {
            "spec": {},
            "cells": [
                {
                    "max_wcrt_ratio": float("inf"),
                    "extras": {"x": float("nan")},
                    "time_s": 1.0,
                }
            ],
        }
        payload = canonical_result_payload(document)
        cell = payload["cells"][0]
        assert cell["max_wcrt_ratio"] == "Infinity"
        assert cell["extras"]["x"] == "NaN"


class TestStdlibBridge:
    """The production fallback path: the same app on http.server."""

    def test_http_round_trip(self):
        import urllib.request
        from http.server import ThreadingHTTPServer

        from repro.serve.server import _make_handler

        app = create_app(ServeConfig(pool_workers=1))
        server = ThreadingHTTPServer(
            ("127.0.0.1", 0), _make_handler(app)
        )
        server.daemon_threads = True
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
                assert json.loads(r.read())["status"] == "ok"
            request = urllib.request.Request(
                base + "/analyze",
                data=json.dumps(
                    {"system": system_to_dict(sensor_fusion_system())}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as r:
                assert json.loads(r.read())["schedulable"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            app.close()
