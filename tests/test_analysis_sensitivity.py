"""Tests for sensitivity analysis (scaling factors, slacks)."""

import math

import pytest

from repro.analysis import (
    analyze,
    critical_scaling_factor,
    delay_slack,
    rate_slack,
)
from repro.analysis.sensitivity import bisect_monotone
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform


class TestBisectMonotone:
    def test_threshold_found(self):
        x = bisect_monotone(lambda v: v <= 3.25, 0.0, 10.0, tol=1e-6)
        assert x == pytest.approx(3.25, abs=1e-5)

    def test_all_true_returns_hi(self):
        assert bisect_monotone(lambda v: True, 0.0, 5.0) == 5.0

    def test_all_false_returns_lo(self):
        assert bisect_monotone(lambda v: False, 2.0, 5.0) == 2.0


class TestCriticalScaling:
    def test_paper_example_has_margin(self):
        factor = critical_scaling_factor(sensor_fusion_system(), tol=1e-3)
        assert factor > 1.0

    def test_scaled_to_critical_is_schedulable(self):
        system = sensor_fusion_system()
        factor = critical_scaling_factor(system, tol=1e-3)
        from repro.analysis.sensitivity import _scaled_system

        assert analyze(_scaled_system(system, factor)).schedulable
        assert not analyze(_scaled_system(system, factor * 1.05)).schedulable

    def test_unschedulable_system_factor_below_one(self):
        t1 = Transaction(period=10.0, tasks=[Task(wcet=8.0, platform=0, priority=2)])
        t2 = Transaction(period=10.0, tasks=[Task(wcet=8.0, platform=0, priority=1)])
        s = TransactionSystem(transactions=[t1, t2], platforms=[DedicatedPlatform()])
        assert critical_scaling_factor(s, tol=1e-3) < 1.0


class TestSlacks:
    def test_rate_slack_below_current(self):
        system = sensor_fusion_system()
        needed = rate_slack(system, 2, tol=1e-3)  # Pi3
        assert needed <= 0.2 + 1e-6
        assert needed > 0.0

    def test_rate_slack_feasible_at_result(self):
        system = sensor_fusion_system()
        needed = rate_slack(system, 2, tol=1e-3)
        from repro.platforms.linear import LinearSupplyPlatform

        platforms = list(system.platforms)
        platforms[2] = LinearSupplyPlatform(needed + 1e-3, 2.0, 1.0)
        trimmed = TransactionSystem(
            transactions=system.transactions, platforms=platforms
        )
        assert analyze(trimmed).schedulable

    def test_delay_slack_above_current(self):
        system = sensor_fusion_system()
        max_delay = delay_slack(system, 2, tol=1e-3)
        assert max_delay >= 2.0

    def test_delay_slack_tight(self):
        system = sensor_fusion_system()
        max_delay = delay_slack(system, 2, tol=1e-3)
        from repro.platforms.linear import LinearSupplyPlatform

        platforms = list(system.platforms)
        platforms[2] = LinearSupplyPlatform(0.2, max_delay * 1.1 + 0.5, 1.0)
        worse = TransactionSystem(
            transactions=system.transactions, platforms=platforms
        )
        assert not analyze(worse).schedulable

    def test_delay_slack_infeasible_reports_minus_inf(self):
        t1 = Transaction(period=10.0, tasks=[Task(wcet=9.0, platform=0, priority=1)])
        s = TransactionSystem(
            transactions=[t1],
            platforms=[DedicatedPlatform()],
        )
        # Already needs nearly the whole period; any delay over 1 fails, and
        # delay_slack starts from the current delay (0), so it succeeds.
        assert delay_slack(s, 0, tol=1e-3) >= 0.0

    def test_rate_slack_infeasible_reports_inf(self):
        t1 = Transaction(period=10.0, tasks=[Task(wcet=20.0, platform=0, priority=1)])
        s = TransactionSystem(transactions=[t1], platforms=[DedicatedPlatform()])
        assert math.isinf(rate_slack(s, 0))
