"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_system, system_to_dict
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform


@pytest.fixture
def paper_file(tmp_path):
    return str(save_system(sensor_fusion_system(), tmp_path / "paper.json"))


@pytest.fixture
def unschedulable_file(tmp_path):
    t1 = Transaction(period=10.0, tasks=[Task(wcet=7.0, platform=0, priority=2)])
    t2 = Transaction(period=10.0, tasks=[Task(wcet=7.0, platform=0, priority=1)])
    s = TransactionSystem(transactions=[t1, t2], platforms=[DedicatedPlatform()])
    return str(save_system(s, tmp_path / "bad.json"))


class TestAnalyze:
    def test_schedulable_exit_zero(self, paper_file, capsys):
        assert main(["analyze", paper_file]) == 0
        out = capsys.readouterr().out
        assert "schedulable: True" in out
        assert "Gamma1" in out

    def test_trace_prints_iteration_table(self, paper_file, capsys):
        assert main(["analyze", paper_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "J(0)" in out and "R(3)" in out

    def test_exact_method(self, paper_file, capsys):
        assert main(["analyze", paper_file, "--method", "exact"]) == 0

    def test_unschedulable_exit_one(self, unschedulable_file, capsys):
        assert main(["analyze", unschedulable_file]) == 1
        assert "NO" in capsys.readouterr().out

    def test_missing_file_exit_two(self, capsys):
        assert main(["analyze", "/nonexistent/sys.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_runs(self, paper_file, capsys):
        assert main(["simulate", paper_file, "--horizon", "500"]) == 0
        out = capsys.readouterr().out
        assert "total deadline misses: 0" in out

    def test_misses_exit_one(self, unschedulable_file, capsys):
        assert main(["simulate", unschedulable_file, "--horizon", "200"]) == 1

    def test_edf_scheduler_flag(self, paper_file, capsys):
        assert main(
            ["simulate", paper_file, "--horizon", "300", "--scheduler", "edf"]
        ) == 0


class TestValidate:
    def test_sound(self, paper_file, capsys):
        assert main(
            ["validate", paper_file, "--seeds", "0", "--horizon", "1000"]
        ) == 0
        assert "sound: True" in capsys.readouterr().out


class TestDesign:
    def test_design_writes_output(self, paper_file, tmp_path, capsys):
        out_path = tmp_path / "designed.json"
        assert main(
            ["design", paper_file, "--rate-tol", "0.01", "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        data = json.loads(out_path.read_text())
        assert data["version"] == 1
        out = capsys.readouterr().out
        assert "saves" in out


class TestGantt:
    def test_renders_chart(self, paper_file, capsys):
        assert main([
            "gantt", paper_file, "--horizon", "200", "--window", "100",
            "--width", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "Gantt [0, 100)" in out
        assert "Pi3" in out

    def test_placement_flag(self, paper_file, capsys):
        assert main([
            "gantt", paper_file, "--horizon", "100", "--placement", "late",
        ]) == 0


class TestExample:
    def test_dump_to_stdout(self, capsys):
        assert main(["example"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["transactions"]) == 4

    def test_dump_to_file(self, tmp_path, capsys):
        path = tmp_path / "ex.json"
        assert main(["example", "--out", str(path)]) == 0
        assert json.loads(path.read_text()) == system_to_dict(sensor_fusion_system())
