"""Differential harness: analysis bounds vs discrete-event simulation.

The fundamental soundness invariant of the reproduction, exercised at
scale: for generated systems that the analysis accepts, **no simulated
response time may exceed the analytic worst-case bound**, under any seed,
budget-window placement, or release phasing.  (The converse direction --
observations below the best-case bound -- is asserted by
``validate_against_analysis`` as well.)

A small always-on subset keeps the invariant in tier-1; the ~50-system
sweep is marked ``slow`` (run it with ``pytest -m slow``).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import RandomSystemSpec, random_system
from repro.sim import validate_against_analysis

#: Analysis configuration for differential runs: the sound best-case bound
#: (the paper's published formula is not envelope-correct against bursty
#: supplies -- see repro.analysis.bestcase).
SOUND = AnalysisConfig(best_case="sound")


def schedulable_systems(count: int, *, utilization: float = 0.45, start_seed: int = 0):
    """Generate *count* random systems accepted by the holistic analysis.

    The delay range is bounded away from zero: a linear platform with a
    tiny delay synthesizes a periodic-server supply with period
    ``delta / (2 (1 - alpha))``, and simulating hundreds of thousands of
    budget windows per run adds nothing to the differential comparison.
    """
    spec = RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=utilization,
        delay_range=(0.5, 2.0),
    )
    found = []
    seed = start_seed
    while len(found) < count:
        if seed - start_seed > 40 * count:  # generous give-up guard
            raise RuntimeError(
                f"could not find {count} schedulable systems "
                f"(got {len(found)} after {seed - start_seed} draws)"
            )
        system = random_system(spec, seed=seed)
        result = analyze(system, config=SOUND)
        if result.schedulable and result.converged:
            found.append((seed, system, result))
        seed += 1
    return found


def assert_bounds_dominate(report) -> None:
    """Observed responses never exceed worst-case / undercut best-case."""
    assert report.runs > 0
    for key, observed in report.observed.items():
        bound = report.bound[key]
        if math.isinf(bound):
            continue
        assert observed <= bound + 1e-6, (
            f"task {key}: simulated response {observed} exceeds "
            f"analysis bound {bound}"
        )
    assert report.sound, (
        f"violations: {report.violations}, "
        f"best-case violations: {report.best_violations}"
    )


class TestDifferentialFast:
    """Always-on subset: a handful of systems, reduced simulation matrix."""

    def test_bounds_dominate_simulation(self):
        for seed, system, _result in schedulable_systems(4):
            report = validate_against_analysis(
                system,
                seeds=(0, 1),
                placements=("early", "random"),
                release_modes=("synchronous", "random"),
                horizon=1500.0,
                analysis_config=SOUND,
            )
            assert_bounds_dominate(report)

    def test_paper_example_differential(self):
        from repro.paper import sensor_fusion_system

        report = validate_against_analysis(
            sensor_fusion_system(),
            seeds=(0, 1, 2),
            horizon=2500.0,
            analysis_config=SOUND,
        )
        assert_bounds_dominate(report)


@pytest.mark.slow
class TestDifferentialAtScale:
    """~50 generated schedulable systems, full simulation matrix."""

    N_SYSTEMS = 50

    def test_bounds_dominate_at_scale(self):
        systems = schedulable_systems(self.N_SYSTEMS)
        assert len(systems) == self.N_SYSTEMS
        worst_tightness = 0.0
        for seed, system, _result in systems:
            report = validate_against_analysis(
                system,
                seeds=(0, 1),
                placements=("early", "late", "random"),
                release_modes=("synchronous", "random"),
                horizon=2000.0,
                analysis_config=SOUND,
            )
            assert_bounds_dominate(report)
            worst_tightness = max(
                worst_tightness,
                max(
                    (report.tightness(*key) for key in report.bound),
                    default=0.0,
                ),
            )
        # Sanity on the harness itself: the bound is tight enough somewhere
        # that the comparison is meaningful (not vacuously dominated).
        assert worst_tightness > 0.5

    @pytest.mark.parametrize("utilization", [0.3, 0.6])
    def test_bounds_dominate_across_load(self, utilization):
        for seed, system, _result in schedulable_systems(
            8, utilization=utilization, start_seed=1000
        ):
            report = validate_against_analysis(
                system,
                seeds=(0,),
                placements=("early", "random"),
                release_modes=("synchronous", "random"),
                horizon=1500.0,
                analysis_config=SOUND,
            )
            assert_bounds_dominate(report)
