"""Tests for workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze
from repro.gen import (
    RandomAssemblySpec,
    RandomSystemSpec,
    random_assembly,
    random_system,
    uunifast,
    uunifast_discard,
)


class TestUUniFast:
    @given(
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.05, max_value=4.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_sums_to_total(self, n, total, seed):
        u = uunifast(n, total, np.random.default_rng(seed))
        assert len(u) == n
        assert float(np.sum(u)) == pytest.approx(total, rel=1e-9)
        assert np.all(u >= -1e-12)

    def test_single_task(self):
        assert uunifast(1, 0.7).tolist() == [0.7]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5)
        with pytest.raises(ValueError):
            uunifast(3, 0.0)

    def test_mean_is_uniform(self):
        """Each share has expectation total/n (symmetry of the simplex)."""
        rng = np.random.default_rng(0)
        acc = np.zeros(4)
        n_draws = 3000
        for _ in range(n_draws):
            acc += uunifast(4, 1.0, rng)
        means = acc / n_draws
        assert np.allclose(means, 0.25, atol=0.02)


class TestUUniFastDiscard:
    def test_respects_cap(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            u = uunifast_discard(4, 2.0, cap=0.8, rng=rng)
            assert np.all(u <= 0.8 + 1e-12)
            assert float(np.sum(u)) == pytest.approx(2.0)

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            uunifast_discard(2, 3.0, cap=1.0)


class TestRandomSystem:
    def test_reproducible(self):
        a = random_system(seed=5)
        b = random_system(seed=5)
        for tra, trb in zip(a.transactions, b.transactions):
            assert tra.period == trb.period
            for x, y in zip(tra.tasks, trb.tasks):
                assert x.wcet == y.wcet
                assert x.platform == y.platform

    def test_utilization_respected(self):
        spec = RandomSystemSpec(utilization=0.5, n_platforms=2, n_transactions=6)
        s = random_system(spec, seed=3)
        for m in range(2):
            if s.tasks_on(m):
                # Utilization relative to the platform rate is 0.5 by
                # construction: demand/rate/period summed == 0.5.
                assert s.utilization(m) == pytest.approx(0.5, abs=1e-9)

    def test_deadline_factor(self):
        spec = RandomSystemSpec(deadline_factor=2.0)
        s = random_system(spec, seed=1)
        for tr in s.transactions:
            assert tr.deadline == pytest.approx(2.0 * tr.period)

    def test_bcet_ratio(self):
        s = random_system(RandomSystemSpec(bcet_ratio=0.5), seed=2)
        for tr in s.transactions:
            for t in tr.tasks:
                assert t.bcet == pytest.approx(0.5 * t.wcet)

    def test_task_counts_in_range(self):
        spec = RandomSystemSpec(tasks_per_transaction=(2, 3))
        s = random_system(spec, seed=4)
        for tr in s.transactions:
            assert 2 <= len(tr.tasks) <= 3

    def test_analyzable(self):
        result = analyze(random_system(RandomSystemSpec(utilization=0.3), seed=8))
        assert result.schedulable

    def test_periods_within_range(self):
        spec = RandomSystemSpec(period_range=(100.0, 200.0))
        s = random_system(spec, seed=6)
        for tr in s.transactions:
            assert 100.0 <= tr.period <= 200.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RandomSystemSpec(n_platforms=0)
        with pytest.raises(ValueError):
            RandomSystemSpec(tasks_per_transaction=(3, 1))
        with pytest.raises(ValueError):
            RandomSystemSpec(bcet_ratio=0.0)


class TestRandomAssembly:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_validates_cleanly(self, seed):
        asm = random_assembly(seed=seed)
        fatal = [p for p in asm.validate() if p.fatal]
        assert fatal == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_derives_and_analyzes(self, seed):
        system = random_assembly(seed=seed).derive_transactions()
        assert system.total_tasks() >= 2
        analyze(system)  # must not raise

    def test_layer_count_controls_depth(self):
        spec = RandomAssemblySpec(n_layers=3, clients_per_layer=1)
        asm = random_assembly(spec, seed=1)
        assert len(asm.instances) == 3

    def test_reproducible(self):
        a = random_assembly(seed=7).derive_transactions()
        b = random_assembly(seed=7).derive_transactions()
        assert [tr.name for tr in a] == [tr.name for tr in b]
        assert [len(tr.tasks) for tr in a] == [len(tr.tasks) for tr in b]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RandomAssemblySpec(n_layers=0)
        with pytest.raises(ValueError):
            RandomAssemblySpec(calls_per_thread=(2, 1))
