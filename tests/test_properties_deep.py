"""Deep property-based suites crossing module boundaries."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import analyze
from repro.analysis.busy import build_views, phase, w_task
from repro.gen import RandomAssemblySpec, RandomSystemSpec, random_assembly, random_system
from repro.io import (
    assembly_from_dict,
    assembly_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.platforms.periodic_server import PeriodicServer
from repro.sim.supply import ServerSupply

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIoProperties:
    @given(st.integers(min_value=0, max_value=200))
    @SETTINGS
    def test_system_round_trip_preserves_analysis(self, seed):
        system = random_system(
            RandomSystemSpec(n_platforms=2, n_transactions=3), seed=seed
        )
        back = system_from_dict(system_to_dict(system))
        ra = analyze(system)
        rb = analyze(back)
        assert ra.transaction_wcrt == pytest.approx(rb.transaction_wcrt)
        assert ra.schedulable == rb.schedulable

    @given(st.integers(min_value=0, max_value=50))
    @SETTINGS
    def test_assembly_round_trip_preserves_structure(self, seed):
        asm = random_assembly(RandomAssemblySpec(), seed=seed)
        back = assembly_from_dict(assembly_to_dict(asm))
        a = asm.derive_transactions()
        b = back.derive_transactions()
        assert [tr.name for tr in a] == [tr.name for tr in b]
        assert [len(tr.tasks) for tr in a] == [len(tr.tasks) for tr in b]
        for ta, tb in zip(a.transactions, b.transactions):
            for x, y in zip(ta.tasks, tb.tasks):
                assert x.wcet == pytest.approx(y.wcet)
                assert x.platform == y.platform
                assert x.priority == y.priority


class TestTransformProperties:
    @given(st.integers(min_value=0, max_value=50))
    @SETTINGS
    def test_one_transaction_per_periodic_thread(self, seed):
        asm = random_assembly(RandomAssemblySpec(), seed=seed)
        n_periodic = sum(
            len(comp.periodic_threads()) for comp in asm.instances.values()
        )
        system = asm.derive_transactions()
        assert len(system.transactions) == n_periodic

    @given(st.integers(min_value=0, max_value=50))
    @SETTINGS
    def test_every_task_platform_valid_and_named(self, seed):
        asm = random_assembly(RandomAssemblySpec(n_layers=3), seed=seed)
        system = asm.derive_transactions()
        for tr in system:
            for task in tr.tasks:
                assert 0 <= task.platform < len(system.platforms)
                assert task.name
                assert task.meta.get("instance") in asm.instances

    @given(st.integers(min_value=0, max_value=50))
    @SETTINGS
    def test_chain_cycles_match_thread_bodies(self, seed):
        """Total derived cycles = cycles of the root thread plus all callee
        bodies, once per call site."""
        asm = random_assembly(RandomAssemblySpec(), seed=seed)
        system = asm.derive_transactions()

        def body_cycles(instance, thread):
            from repro.components.threads import CallStep, TaskStep

            total = 0.0
            for step in thread.body:
                if isinstance(step, TaskStep):
                    total += step.wcet
                else:
                    b = asm.bindings[(instance, step.method)]
                    callee = asm.instances[b.callee]
                    total += body_cycles(b.callee, callee.realizer_of(b.provided))
            return total

        idx = 0
        for iname, comp in asm.instances.items():
            for thread in comp.periodic_threads():
                expected = body_cycles(iname, thread)
                got = system.transactions[idx].total_wcet()
                assert got == pytest.approx(expected)
                idx += 1


class TestSupplyCompliance:
    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=1.0, max_value=20.0),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_server_supply_within_envelopes(self, frac, period, seed):
        """Any placement sequence stays inside [zmin, zmax] of the server."""
        budget = frac * period
        platform = PeriodicServer(budget, period)
        supply = ServerSupply(
            budget, period, placement="random",
            rng=np.random.default_rng(seed),
        )

        def delivered(a, b, steps=600):
            ts = np.linspace(a, b, steps, endpoint=False)
            dt = (b - a) / steps
            return sum(supply.rate_at(float(x)) for x in ts) * dt

        rng = np.random.default_rng(seed + 1)
        for _ in range(5):
            t0 = float(rng.uniform(0.0, 3 * period))
            t = float(rng.uniform(0.2 * period, 3 * period))
            got = delivered(t0, t0 + t)
            slack = 0.02 * period  # integration resolution
            assert got >= platform.zmin(t) - slack
            assert got <= platform.zmax(t) + slack


class TestBusyFunctionProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=60.0),
        st.floats(min_value=0.0, max_value=60.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_phase_in_half_open_period(self, phi_k, j_k, phi_j, period):
        ph = phase(phi_k, j_k, phi_j, period)
        assert 0.0 < ph <= period

    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=1.0, max_value=60.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_w_task_nonnegative_and_superadditive_in_jitter(
        self, phi, t, cost, period
    ):
        ph = phase(0.0, 0.0, phi, period)
        base = w_task(ph, 0.0, cost, period, t)
        jittered = w_task(ph, period / 2, cost, period, t)
        assert base >= 0.0
        assert jittered >= base

    def test_views_symmetric_for_equal_systems(self):
        a = random_system(RandomSystemSpec(), seed=42)
        b = random_system(RandomSystemSpec(), seed=42)
        va = build_views(a, 0, 0)
        vb = build_views(b, 0, 0)
        assert va[0] == vb[0]
        assert va[1] == vb[1]
