"""Unit tests for priority-assignment policies."""

import pytest

from repro.model.priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
    normalize_priorities,
)
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import DedicatedPlatform


def build(periods_deadlines, platform_count=1):
    """One single-task transaction per (period, deadline) pair, all on platform 0."""
    txns = [
        Transaction(
            period=p,
            deadline=d,
            tasks=[Task(wcet=0.1, platform=0, priority=1)],
            name=f"G{k}",
        )
        for k, (p, d) in enumerate(periods_deadlines)
    ]
    platforms = [DedicatedPlatform() for _ in range(platform_count)]
    return TransactionSystem(transactions=txns, platforms=platforms)


class TestRateMonotonic:
    def test_shortest_period_highest_priority(self):
        s = build([(10.0, 10.0), (5.0, 5.0), (20.0, 20.0)])
        assign_rate_monotonic(s)
        prios = [tr.tasks[0].priority for tr in s]
        # periods 10, 5, 20 -> priorities 2, 3, 1 (greater = higher).
        assert prios == [2, 3, 1]

    def test_ties_broken_deterministically(self):
        s = build([(10.0, 10.0), (10.0, 10.0)])
        assign_rate_monotonic(s)
        prios = [tr.tasks[0].priority for tr in s]
        assert sorted(prios) == [1, 2]
        assert prios[0] > prios[1]  # earlier transaction wins the tie

    def test_per_platform_priority_spaces(self):
        t1 = Transaction(period=10.0, tasks=[Task(wcet=1, platform=0, priority=1)])
        t2 = Transaction(period=5.0, tasks=[Task(wcet=1, platform=1, priority=1)])
        s = TransactionSystem(
            transactions=[t1, t2],
            platforms=[DedicatedPlatform(), DedicatedPlatform()],
        )
        assign_rate_monotonic(s)
        # Each platform has one task -> both get top priority 1 of their space.
        assert t1.tasks[0].priority == 1
        assert t2.tasks[0].priority == 1


class TestDeadlineMonotonic:
    def test_orders_by_deadline_not_period(self):
        s = build([(10.0, 9.0), (10.0, 3.0), (10.0, 6.0)])
        assign_deadline_monotonic(s)
        prios = [tr.tasks[0].priority for tr in s]
        assert prios == [1, 3, 2]


class TestNormalize:
    def test_dense_remap_preserves_order(self):
        s = build([(10.0, 10.0), (5.0, 5.0), (20.0, 20.0)])
        for tr, p in zip(s, [10, 70, 3]):
            tr.tasks[0].priority = p
        normalize_priorities(s)
        prios = [tr.tasks[0].priority for tr in s]
        assert prios == [2, 3, 1]

    def test_preserves_ties(self):
        s = build([(10.0, 10.0), (5.0, 5.0)])
        for tr in s:
            tr.tasks[0].priority = 42
        normalize_priorities(s)
        assert [tr.tasks[0].priority for tr in s] == [1, 1]

    def test_empty_platform_is_fine(self):
        s = build([(10.0, 10.0)], platform_count=2)
        normalize_priorities(s)  # platform 1 has no tasks; must not raise
        assert s.transactions[0].tasks[0].priority == 1
