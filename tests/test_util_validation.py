"""Unit tests for argument validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type(3, int, "x") == 3

    def test_accepts_tuple_of_types(self):
        assert check_type(3.5, (int, float), "x") == 3.5

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("3", int, "x")

    def test_tuple_message_lists_alternatives(self):
        with pytest.raises(TypeError, match=r"int \| float"):
            check_type("3", (int, float), "x")


class TestCheckFinite:
    def test_accepts_float_and_int(self):
        assert check_finite(2, "x") == 2.0
        assert check_finite(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_nonfinite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            check_finite(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_finite(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_finite("1.0", "x")


class TestCheckSign:
    def test_positive_accepts(self):
        assert check_positive(0.1, "x") == 0.1

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive(0.0, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative(-1e-9, "x")


class TestCheckInRange:
    def test_closed_bounds(self):
        assert check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_open_low(self):
        with pytest.raises(ValueError, match=r"\(0.0, 1.0\]"):
            check_in_range(0.0, 0.0, 1.0, "x", low_open=True)

    def test_open_high(self):
        with pytest.raises(ValueError, match=r"\[0.0, 1.0\)"):
            check_in_range(1.0, 0.0, 1.0, "x", high_open=True)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0, "x")
