"""Unit tests for network-link platforms and message tasks."""

import pytest

from repro.platforms.network import Message, NetworkLinkPlatform, message_to_task


class TestNetworkLinkPlatform:
    def test_rate_is_bandwidth_times_share(self):
        link = NetworkLinkPlatform(1000.0, share=0.5)
        assert link.rate == 500.0

    def test_delay_aggregates(self):
        link = NetworkLinkPlatform(
            1000.0, arbitration_delay=0.002, propagation_delay=0.001
        )
        assert link.delay == pytest.approx(0.003)

    def test_rejects_zero_share(self):
        with pytest.raises(ValueError):
            NetworkLinkPlatform(1000.0, share=0.0)

    def test_rejects_share_above_one(self):
        with pytest.raises(ValueError):
            NetworkLinkPlatform(1000.0, share=1.1)

    def test_wire_cycles_adds_overhead(self):
        link = NetworkLinkPlatform(1000.0, frame_overhead=8.0)
        assert link.wire_cycles(100.0) == 108.0

    def test_transmission_time(self):
        link = NetworkLinkPlatform(100.0, arbitration_delay=0.5, frame_overhead=10.0)
        # delta + bytes/rate = 0.5 + 110/100
        assert link.transmission_time(100.0) == pytest.approx(1.6)


class TestMessage:
    def test_best_defaults_to_worst(self):
        m = Message(payload=64.0)
        assert m.payload_best == 64.0

    def test_rejects_best_above_worst(self):
        with pytest.raises(ValueError):
            Message(payload=64.0, payload_best=100.0)

    def test_rejects_zero_payload(self):
        with pytest.raises(ValueError):
            Message(payload=0.0)


class TestMessageToTask:
    def test_conversion(self):
        link = NetworkLinkPlatform(1000.0, frame_overhead=8.0, name="bus")
        m = Message(payload=100.0, payload_best=50.0, priority=4, name="req")
        task = message_to_task(m, link, platform_index=3)
        assert task.wcet == 108.0
        assert task.bcet == 58.0
        assert task.platform == 3
        assert task.priority == 4
        assert task.name == "req"
        assert task.meta["kind"] == "message"

    def test_unnamed_message_gets_default_name(self):
        link = NetworkLinkPlatform(1000.0)
        task = message_to_task(Message(payload=10.0), link, 0)
        assert task.name == "msg"
