"""Tests for the text report generator."""

import pytest

from repro.analysis import analyze, text_report
from repro.analysis.report import _fmt
from repro.cli import main
from repro.io import save_system
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform


class TestTextReport:
    def test_schedulable_headline(self):
        report = text_report(sensor_fusion_system())
        assert "SCHEDULABLE" in report.splitlines()[0]
        assert "NOT SCHEDULABLE" not in report

    def test_contains_all_sections(self):
        report = text_report(sensor_fusion_system())
        assert "Platforms" in report
        assert "End-to-end responses" in report
        assert "Per-task results" in report
        assert "tau_1_4" in report

    def test_reuses_precomputed_result(self):
        system = sensor_fusion_system()
        result = analyze(system, trace=True)
        report = text_report(system, result, include_trace=True)
        assert "iteration trace" in report

    def test_include_trace_requires_trace(self):
        system = sensor_fusion_system()
        result = analyze(system, trace=False)
        with pytest.raises(ValueError, match="iteration trace"):
            text_report(system, result, include_trace=True)

    def test_miss_reported(self):
        t1 = Transaction(
            period=10.0, deadline=1.0, name="tight",
            tasks=[Task(wcet=2.0, platform=0, priority=1)],
        )
        s = TransactionSystem(transactions=[t1], platforms=[DedicatedPlatform()])
        report = text_report(s)
        assert "NOT SCHEDULABLE" in report
        assert "Deadline misses: tight" in report
        assert "MISS" in report

    def test_fmt_inf(self):
        assert _fmt(float("inf")) == "inf"


class TestReportCli:
    def test_report_flag(self, tmp_path, capsys):
        path = save_system(sensor_fusion_system(), tmp_path / "s.json")
        assert main(["analyze", str(path), "--report"]) == 0
        out = capsys.readouterr().out
        assert "Schedulability report" in out
        assert "Per-task results" in out

    def test_report_with_trace(self, tmp_path, capsys):
        path = save_system(sensor_fusion_system(), tmp_path / "s.json")
        assert main(["analyze", str(path), "--report", "--trace"]) == 0
        assert "iteration trace" in capsys.readouterr().out
