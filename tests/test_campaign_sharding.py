"""Sharded distributed campaigns: partition laws, union exactness, merge.

The ISSUE 3 tentpole contract: ``run(shard=(k, n))`` executes a
deterministic cell-seed-hash partition of the chains such that the union
of all shard results is *bit-identical* (cell keys, verdicts, wcrt
ratios, evaluation counts) to the unsharded campaign, for any n and any
worker count, and ``merge_campaign_results`` / ``python -m repro
campaign-merge`` reassembles shard files while rejecting incompatible
specs and overlapping cells.
"""

from __future__ import annotations

import pytest

from repro.batch import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    chain_cost_estimates,
    lpt_shard_chains,
    merge_campaign_results,
    parse_shard,
    partition_chains,
    shard_chains,
)
from repro.cli import main as cli_main


def spec_variant(variant: int) -> CampaignSpec:
    """A family of small but structurally different campaign specs."""
    grids = [
        {"utilization": (0.3, 0.6, 0.9)},
        {"utilization": (0.4, 0.8), "n_transactions": (1, 2)},
        {"utilization": (0.35, 0.55, 0.75, 0.95)},
    ]
    return CampaignSpec(
        grid=grids[variant % len(grids)],
        base={
            "n_platforms": 2,
            "n_transactions": 2,
            "tasks_per_transaction": (1, 2),
        },
        methods=("reduced",) if variant % 2 == 0 else ("reduced", "dedicated"),
        systems_per_cell=3 + variant % 2,
        seed=17 + variant,
    )


class TestPartitionLaws:
    """shard_chains is a true partition, balanced and deterministic."""

    @pytest.mark.parametrize("variant", [0, 1, 2])
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_exact_partition(self, variant, n):
        chains = Campaign(spec_variant(variant)).chains()
        shards = [shard_chains(chains, (k, n)) for k in range(n)]
        seen = [c["index"] for shard in shards for c in shard]
        # Every chain in exactly one shard.
        assert sorted(seen) == [c["index"] for c in chains]
        # Balanced within one chain.
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
        # Each shard preserves canonical execution order.
        for shard in shards:
            indices = [c["index"] for c in shard]
            assert indices == sorted(indices)

    def test_assignment_is_deterministic(self):
        chains = Campaign(spec_variant(0)).chains()
        a = [c["index"] for c in shard_chains(chains, (1, 3))]
        b = [c["index"] for c in shard_chains(chains, (1, 3))]
        assert a == b

    def test_bad_shard_rejected(self):
        chains = Campaign(spec_variant(0)).chains()
        with pytest.raises(ValueError, match="0 <= k < n"):
            shard_chains(chains, (2, 2))
        with pytest.raises(ValueError, match="0 <= k < n"):
            shard_chains(chains, (-1, 2))

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("4/5") == (4, 5)
        for bad in ("2/2", "1", "a/b", "1/0", "-1/3"):
            with pytest.raises(ValueError, match="shard"):
                parse_shard(bad)


class TestLptPartition:
    """Cost-aware LPT sharding: partition laws + cost balance."""

    @pytest.mark.parametrize("variant", [0, 1, 2])
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_exact_partition(self, variant, n):
        spec = spec_variant(variant)
        chains = Campaign(spec).chains()
        shards = [
            partition_chains(spec, chains, (k, n), partition="lpt")
            for k in range(n)
        ]
        seen = sorted(c["index"] for shard in shards for c in shard)
        assert seen == [c["index"] for c in chains]
        for shard in shards:
            indices = [c["index"] for c in shard]
            assert indices == sorted(indices)  # canonical order kept

    def test_skewed_costs_balance_better_than_counts(self):
        """One chain 50x the rest: LPT isolates it; interleaving by
        count would pair it with others on some shard."""
        chains = [{"index": i, "seed": i, "point": {}, "replicate": 0}
                  for i in range(8)]
        costs = [50.0] + [1.0] * 7
        shards = [lpt_shard_chains(chains, (k, 2), costs) for k in range(2)]
        loads = [
            sum(costs[c["index"]] for c in shard) for shard in shards
        ]
        # The heavy chain sits alone; everything else lands opposite.
        assert sorted(loads) == [7.0, 50.0]

    def test_manifest_costs_drive_the_assignment(self):
        spec = spec_variant(0)
        chains = Campaign(spec).chains()
        flat = chain_cost_estimates(spec, chains)
        assert len(set(flat)) == 1  # homogeneous grid -> proxy is flat
        manifest = {c["index"]: 1.0 for c in chains}
        manifest[chains[2]["index"]] = 100.0
        weighted = chain_cost_estimates(spec, chains, manifest)
        assert weighted[2] == 100.0
        # A chain missing from the manifest gets the mean recorded cost.
        del manifest[chains[0]["index"]]
        patched = chain_cost_estimates(spec, chains, manifest)
        assert patched[0] == pytest.approx(
            sum(manifest.values()) / len(manifest)
        )

    def test_deterministic_and_validated(self):
        spec = spec_variant(1)
        chains = Campaign(spec).chains()
        a = [c["index"] for c in partition_chains(
            spec, chains, (1, 3), partition="lpt")]
        b = [c["index"] for c in partition_chains(
            spec, chains, (1, 3), partition="lpt")]
        assert a == b
        with pytest.raises(ValueError, match="partition"):
            partition_chains(spec, chains, (0, 2), partition="rand")
        with pytest.raises(ValueError, match="0 <= k < n"):
            lpt_shard_chains(chains, (3, 3), [1.0] * len(chains))
        with pytest.raises(ValueError, match="costs"):
            lpt_shard_chains(chains, (0, 2), [1.0])

    @pytest.mark.parametrize("n", [2, 4])
    def test_union_bit_identical_with_recorded_costs(self, n):
        """The full LPT loop: record chain_costs, feed them back as the
        manifest, union across shards == unsharded run."""
        spec = spec_variant(2)
        full = Campaign(spec).run(workers=1)
        assert set(full.chain_costs) == {
            c["index"] for c in Campaign(spec).chains()
        }
        parts = [
            Campaign(spec).run(
                workers=1, shard=(k, n), partition="lpt",
                cost_manifest=full.chain_costs,
            )
            for k in range(n)
        ]
        merged = merge_campaign_results(parts)
        assert merged.metrics() == full.metrics()
        # The merged union re-assembles the full cost manifest too.
        assert set(merged.chain_costs) == set(full.chain_costs)

    def test_cli_lpt_shards_merge_to_full(self, tmp_path):
        args = [
            "campaign",
            "--grid", "utilization=0.3,0.6,0.9",
            "--transactions", "2",
            "--tasks", "1,2",
            "--systems", "3",
        ]
        full_json = tmp_path / "full.json"
        assert cli_main(args + ["--json", str(full_json)]) == 0
        shard_paths = []
        for k in range(2):
            path = tmp_path / f"lpt{k}.json"
            rc = cli_main(
                args
                + ["--shard", f"{k}/2", "--partition", "lpt",
                   "--cost-manifest", str(full_json),
                   "--json", str(path)]
            )
            assert rc == 0
            shard_paths.append(path)
        merged_json = tmp_path / "merged.json"
        rc = cli_main(
            ["campaign-merge", *map(str, shard_paths),
             "--json", str(merged_json), "--quiet"]
        )
        assert rc == 0
        assert (
            CampaignResult.load_json(merged_json).metrics()
            == CampaignResult.load_json(full_json).metrics()
        )


class TestShardUnion:
    """The acceptance property: shard union == unsharded, bit for bit."""

    @pytest.mark.parametrize("variant", [0, 1, 2])
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_union_bit_identical(self, variant, n):
        spec = spec_variant(variant)
        full = Campaign(spec).run(workers=1)
        parts = [Campaign(spec).run(workers=1, shard=(k, n)) for k in range(n)]
        assert sum(len(p.cells) for p in parts) == len(full.cells)
        merged = merge_campaign_results(parts)
        # metrics() covers cell identity (params incl. sweep value, seed,
        # replicate, method) plus verdicts, wcrt ratios and eval counts.
        assert merged.metrics() == full.metrics()

    @pytest.mark.dist
    def test_sharded_parallel_equals_serial(self, shm_guard):
        spec = spec_variant(1)
        serial = Campaign(spec).run(workers=1, shard=(0, 2))
        parallel = Campaign(spec).run(workers=2, shard=(0, 2))
        assert serial.metrics() == parallel.metrics()

    def test_shard_recorded_in_result(self):
        result = Campaign(spec_variant(0)).run(workers=1, shard=(1, 2))
        assert result.shard == [1, 2]
        assert "shard=1/2" in result.format_summary()


class TestMergeTool:
    def test_merge_round_trips_through_json(self, tmp_path):
        spec = spec_variant(0)
        full = Campaign(spec).run(workers=1)
        paths = []
        for k in range(2):
            part = Campaign(spec).run(workers=1, shard=(k, 2))
            paths.append(part.save_json(tmp_path / f"shard{k}.json"))
        loaded = [CampaignResult.load_json(p) for p in paths]
        merged = merge_campaign_results(loaded)
        assert merged.metrics() == full.metrics()
        assert merged.shard is None

    def test_overlapping_shards_rejected(self):
        spec = spec_variant(0)
        full = Campaign(spec).run(workers=1)
        a = Campaign(spec).run(workers=1, shard=(0, 2))
        # full already contains every cell of shard 0 (and carries no shard
        # index of its own, so the overlap check is what must fire).
        with pytest.raises(ValueError, match="overlapping cell"):
            merge_campaign_results([full, a])

    def test_duplicate_shard_index_rejected(self):
        spec = spec_variant(0)
        a = Campaign(spec).run(workers=1, shard=(0, 2))
        b = CampaignResult(
            spec=a.spec, cells=[], workers=1, wall_time_s=0.0, shard=[0, 2]
        )
        with pytest.raises(ValueError, match="duplicate shard index"):
            merge_campaign_results([a, b])

    def test_mismatched_shard_count_rejected(self):
        spec = spec_variant(0)
        a = Campaign(spec).run(workers=1, shard=(0, 2))
        b = Campaign(spec).run(workers=1, shard=(1, 3))
        with pytest.raises(ValueError, match="shard counts differ"):
            merge_campaign_results([a, b])

    def test_incompatible_spec_rejected(self):
        a = Campaign(spec_variant(0)).run(workers=1, shard=(0, 2))
        other = Campaign(spec_variant(0).__class__.from_dict(
            {**a.spec, "seed": 999}
        )).run(workers=1, shard=(1, 2))
        with pytest.raises(ValueError, match="incompatible spec"):
            merge_campaign_results([a, other])

    def test_foreign_cells_rejected(self):
        """Cells whose identity is not in the spec's plan are flagged."""
        spec = spec_variant(0)
        a = Campaign(spec).run(workers=1, shard=(0, 2))
        rogue = Campaign(spec).run(workers=1, shard=(1, 2))
        for cell in rogue.cells:
            cell.seed += 1  # no longer derivable from the spec
        with pytest.raises(ValueError, match="do not belong"):
            merge_campaign_results([a, rogue])

    def test_partial_merge_is_resumable(self):
        """A merge missing one shard is a valid resume_from input."""
        spec = spec_variant(2)
        full = Campaign(spec).run(workers=1)
        parts = [Campaign(spec).run(workers=1, shard=(k, 3)) for k in (0, 2)]
        merged = merge_campaign_results(parts)
        assert len(merged.cells) < len(full.cells)
        resumed = Campaign(spec).run(workers=1, resume_from=merged)
        assert resumed.metrics() == full.metrics()
        assert resumed.reused_cells == len(merged.cells)

    def test_merge_accounting_sums_and_maxima(self):
        spec = spec_variant(0)
        parts = [Campaign(spec).run(workers=1, shard=(k, 2)) for k in range(2)]
        merged = merge_campaign_results(parts)
        assert merged.wall_time_s == max(p.wall_time_s for p in parts)
        assert merged.workers == max(p.workers for p in parts)

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_campaign_results([])


class TestCliSharding:
    ARGS = [
        "campaign",
        "--grid", "utilization=0.3,0.6",
        "--transactions", "2",
        "--tasks", "1,2",
        "--systems", "3",
        "--workers", "1",
    ]

    def test_shard_and_merge_round_trip(self, tmp_path, capsys):
        full_json = tmp_path / "full.json"
        assert cli_main(self.ARGS + ["--json", str(full_json)]) == 0
        shard_paths = []
        for k in range(2):
            path = tmp_path / f"shard{k}.json"
            rc = cli_main(
                self.ARGS + ["--shard", f"{k}/2", "--json", str(path)]
            )
            assert rc == 0
            shard_paths.append(path)
        out = capsys.readouterr().out
        assert "shard 1/2" in out
        merged_json = tmp_path / "merged.json"
        rc = cli_main([
            "campaign-merge",
            *map(str, shard_paths),
            "--json", str(merged_json),
        ])
        assert rc == 0
        full = CampaignResult.load_json(full_json)
        merged = CampaignResult.load_json(merged_json)
        assert merged.metrics() == full.metrics()

    def test_merge_incomplete_union_exits_1(self, tmp_path, capsys):
        path = tmp_path / "shard0.json"
        assert cli_main(
            self.ARGS + ["--shard", "0/2", "--json", str(path)]
        ) == 0
        capsys.readouterr()
        rc = cli_main(["campaign-merge", str(path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "missing" in err

    def test_merge_overlap_exits_2(self, tmp_path, capsys):
        full_path = tmp_path / "full.json"
        shard_path = tmp_path / "shard0.json"
        assert cli_main(self.ARGS + ["--json", str(full_path)]) == 0
        assert cli_main(
            self.ARGS + ["--shard", "0/2", "--json", str(shard_path)]
        ) == 0
        rc = cli_main(["campaign-merge", str(full_path), str(shard_path)])
        assert rc == 2
        assert "overlapping" in capsys.readouterr().err

    def test_bad_shard_argument_exits_2(self, capsys):
        rc = cli_main(self.ARGS + ["--shard", "2/2"])
        assert rc == 2
        assert "shard" in capsys.readouterr().err

    def test_shard_progress_counts_streamed_cells(self, tmp_path, capsys):
        """--no-collect keeps no cells; the shard line must report the
        streamed (executed) count, not 0."""
        rc = cli_main(
            self.ARGS
            + [
                "--shard", "0/2",
                "--stream-csv", str(tmp_path / "cells.csv"),
                "--no-collect",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shard 0/2: 0 of" not in out
        assert "shard 0/2: " in out
