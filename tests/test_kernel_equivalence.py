"""ISSUE 2 equivalence properties: vector kernel and dirty-set scheduler.

Two layers of the PR must be behavior-preserving:

* the NumPy **vector kernel** must agree with the scalar reference
  closures within ``EPS`` -- at the closure level (same job counts at the
  same time points) and end-to-end through both the reduced and the exact
  analysis on hundreds of random systems;
* the chain-aware **dirty-set Gauss-Seidel** must converge to the same
  response times as the full-sweep Gauss-Seidel (and hence the Jacobi
  trace), only skipping work.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.analysis.busy import (
    HAVE_NUMPY,
    HPTask,
    TransactionView,
    build_views,
    compile_w_transaction_k,
    compile_w_transaction_star,
    w_transaction_k,
    w_transaction_star,
)
from repro.gen import RandomSystemSpec, random_system
from repro.util.math import EPS

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector kernel requires numpy"
)

TOL = max(EPS, 1e-9)


def _systems(n: int, *, spec: RandomSystemSpec, seed0: int = 0):
    for k in range(n):
        # Vary utilization with the seed so the sweep covers both
        # comfortably schedulable and saturated systems.
        util = 0.3 + 0.6 * ((seed0 + k) % 7) / 6.0
        yield random_system(
            RandomSystemSpec(
                n_platforms=spec.n_platforms,
                n_transactions=spec.n_transactions,
                tasks_per_transaction=spec.tasks_per_transaction,
                utilization=util,
            ),
            seed=seed0 + k,
        )


def _assert_same_responses(a, b, context: str) -> None:
    assert a.schedulable == b.schedulable, context
    assert a.converged == b.converged, context
    for key in a.tasks:
        ra, rb = a.tasks[key].wcrt, b.tasks[key].wcrt
        if math.isinf(ra) or math.isinf(rb):
            assert ra == rb, f"{context} task={key}"
        else:
            assert rb == pytest.approx(ra, abs=TOL), f"{context} task={key}"


class TestKernelEquivalenceEndToEnd:
    """Scalar vs vector through the full holistic analysis."""

    SPEC = RandomSystemSpec(
        n_platforms=2, n_transactions=3, tasks_per_transaction=(1, 3)
    )

    def test_reduced_path_200_random_systems(self):
        updates = ("jacobi", "gauss_seidel")
        for k, system in enumerate(_systems(200, spec=self.SPEC)):
            update = updates[k % 2]
            scalar = analyze(
                system,
                config=AnalysisConfig(kernel="scalar", update=update),
            )
            vector = analyze(
                system,
                config=AnalysisConfig(kernel="vector", update=update),
            )
            _assert_same_responses(
                scalar, vector, f"reduced seed={k} update={update}"
            )

    def test_exact_path_random_systems(self):
        small = RandomSystemSpec(
            n_platforms=2, n_transactions=2, tasks_per_transaction=(1, 2)
        )
        for k, system in enumerate(_systems(60, spec=small, seed0=1000)):
            scalar = analyze(
                system, config=AnalysisConfig(method="exact", kernel="scalar")
            )
            vector = analyze(
                system, config=AnalysisConfig(method="exact", kernel="vector")
            )
            _assert_same_responses(scalar, vector, f"exact seed={1000 + k}")


class TestKernelEquivalenceClosures:
    """Scalar vs vector at the compiled-closure level: the job counts must
    be bit-identical (same IEEE operations), so the W values agree to the
    last ulp of the final sum."""

    def test_w_k_and_w_star_match_interpreted(self):
        import numpy as np

        rng = np.random.default_rng(7)
        for trial in range(200):
            period = float(rng.uniform(5.0, 200.0))
            n = int(rng.integers(1, 5))
            tasks = tuple(
                HPTask(
                    phi=float(rng.uniform(0.0, period)),
                    jitter=float(rng.uniform(0.0, 3.0 * period)),
                    cost=float(rng.uniform(0.01, 20.0)),
                    index=j,
                )
                for j in range(n)
            )
            view = TransactionView(period=period, index=0, tasks=tasks)
            s_phi = float(rng.uniform(0.0, period))
            s_jit = float(rng.uniform(0.0, 2.0 * period))
            ts = rng.uniform(0.0, 5.0 * period, 6)

            scalar_k = compile_w_transaction_k(
                view, None, starter_phi=s_phi, starter_jitter=s_jit,
                kernel="scalar",
            )
            vector_k = compile_w_transaction_k(
                view, None, starter_phi=s_phi, starter_jitter=s_jit,
                kernel="vector",
            )
            scalar_star = compile_w_transaction_star(view, kernel="scalar")
            vector_star = compile_w_transaction_star(view, kernel="vector")
            for t in ts:
                t = float(t)
                expected_k = w_transaction_k(
                    view, None, t, starter_phi=s_phi, starter_jitter=s_jit
                )
                assert scalar_k(t) == pytest.approx(expected_k, abs=TOL)
                assert vector_k(t) == pytest.approx(expected_k, abs=TOL)
                expected_star = w_transaction_star(view, t)
                assert scalar_star(t) == pytest.approx(expected_star, abs=TOL)
                assert vector_star(t) == pytest.approx(expected_star, abs=TOL)

    def test_auto_kernel_matches_forced(self):
        system = random_system(
            RandomSystemSpec(
                n_platforms=2, n_transactions=3, tasks_per_transaction=(2, 4),
                utilization=0.6,
            ),
            seed=42,
        )
        auto = analyze(system, config=AnalysisConfig(kernel="auto"))
        scalar = analyze(system, config=AnalysisConfig(kernel="scalar"))
        _assert_same_responses(scalar, auto, "auto-vs-scalar")

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            AnalysisConfig(kernel="quantum")


class TestDirtySetEquivalence:
    """Incremental (dirty-set) Gauss-Seidel vs the full sweep."""

    SPEC = RandomSystemSpec(
        n_platforms=2, n_transactions=3, tasks_per_transaction=(2, 4)
    )

    def test_same_responses_on_random_systems(self):
        for k, system in enumerate(_systems(80, spec=self.SPEC, seed0=500)):
            full = analyze(
                system,
                config=AnalysisConfig(
                    update="gauss_seidel", incremental=False
                ),
            )
            incremental = analyze(
                system,
                config=AnalysisConfig(
                    update="gauss_seidel", incremental=True
                ),
            )
            _assert_same_responses(
                full, incremental, f"dirty-set seed={500 + k}"
            )
            # The fast path must actually skip work on multi-round solves.
            if incremental.outer_iterations > 1 and incremental.converged:
                assert incremental.task_skips > 0

    def test_same_responses_with_warm_start(self):
        """Warm starts can seed jitters above the refresh target; the
        dirty-set bookkeeping must re-dirty observers of lowered jitters."""
        for k, system in enumerate(_systems(40, spec=self.SPEC, seed0=900)):
            cold = analyze(
                system, config=AnalysisConfig(update="gauss_seidel")
            )
            if not cold.converged:
                continue
            warm_vector = cold.final_jitters()
            if any(math.isinf(v) for v in warm_vector.values()):
                continue
            full = analyze(
                system,
                config=AnalysisConfig(
                    update="gauss_seidel", incremental=False
                ),
                warm_start=warm_vector,
            )
            incremental = analyze(
                system,
                config=AnalysisConfig(update="gauss_seidel"),
                warm_start=warm_vector,
            )
            _assert_same_responses(
                full, incremental, f"warm dirty-set seed={900 + k}"
            )

    def test_jacobi_ignores_incremental_flag(self):
        system = random_system(self.SPEC, seed=3)
        a = analyze(
            system, config=AnalysisConfig(update="jacobi", incremental=True)
        )
        b = analyze(
            system, config=AnalysisConfig(update="jacobi", incremental=False)
        )
        assert a.task_skips == b.task_skips == 0
        _assert_same_responses(a, b, "jacobi")

    def test_skip_accounting_consistent(self):
        system = random_system(self.SPEC, seed=11)
        result = analyze(
            system, config=AnalysisConfig(update="gauss_seidel")
        )
        n_tasks = len(result.tasks)
        assert result.task_solves + result.task_skips == (
            result.outer_iterations * n_tasks
        )
