"""Tests for execution-time variation and Gantt rendering."""

import pytest

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform
from repro.sim import SimulationConfig, simulate
from repro.viz import render_gantt


def varied_system():
    tr = Transaction(
        period=10.0,
        tasks=[Task(wcet=4.0, bcet=1.0, platform=0, priority=1, name="t")],
    )
    return TransactionSystem(transactions=[tr], platforms=[DedicatedPlatform()])


class TestExecutionPolicies:
    def test_wcet_policy_constant(self):
        trace = simulate(
            varied_system(), config=SimulationConfig(horizon=100.0)
        )
        st = trace.tasks[(0, 0)]
        assert st.min_response == pytest.approx(4.0)
        assert st.max_response == pytest.approx(4.0)

    def test_bcet_policy_constant(self):
        trace = simulate(
            varied_system(),
            config=SimulationConfig(horizon=100.0, execution="bcet"),
        )
        st = trace.tasks[(0, 0)]
        assert st.max_response == pytest.approx(1.0)

    def test_uniform_policy_within_bounds(self):
        trace = simulate(
            varied_system(),
            config=SimulationConfig(horizon=400.0, execution="uniform", seed=3),
        )
        st = trace.tasks[(0, 0)]
        assert 1.0 - 1e-9 <= st.min_response
        assert st.max_response <= 4.0 + 1e-9
        assert st.max_response > st.min_response  # actually varies

    def test_uniform_reproducible(self):
        cfg = lambda: SimulationConfig(  # noqa: E731
            horizon=200.0, execution="uniform", seed=7
        )
        a = simulate(varied_system(), config=cfg())
        b = simulate(varied_system(), config=cfg())
        assert a.tasks[(0, 0)].max_response == b.tasks[(0, 0)].max_response

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(execution="psychic")

    def test_uniform_observed_within_analytic_interval(self):
        """Observed responses stay inside [sound bcrt, wcrt] for any policy."""
        from repro.analysis import AnalysisConfig, analyze

        system = sensor_fusion_system()
        result = analyze(system, config=AnalysisConfig(best_case="sound"))
        trace = simulate(
            system,
            config=SimulationConfig(
                horizon=3000.0, execution="uniform", seed=1, placement="late"
            ),
        )
        for key, st in trace.tasks.items():
            assert st.max_response <= result.tasks[key].wcrt + 1e-6
            assert st.min_response >= result.tasks[key].bcrt - 1e-6


class TestGantt:
    def test_requires_intervals(self):
        trace = simulate(varied_system(), config=SimulationConfig(horizon=20.0))
        with pytest.raises(ValueError, match="record_intervals"):
            render_gantt(varied_system(), trace)

    def test_renders_expected_occupancy(self):
        system = varied_system()
        trace = simulate(
            system,
            config=SimulationConfig(horizon=20.0, record_intervals=True),
        )
        chart = render_gantt(system, trace, end=20.0, width=20)
        lines = chart.splitlines()
        row = next(ln for ln in lines if "|" in ln)
        cells = row.split("|")[1]
        # Task runs [0,4) and [10,14): columns 0-3 and 10-13 busy.
        assert cells[0:4] == "1111"
        assert cells[4:10].strip() == ""
        assert cells[10:14] == "1111"

    def test_paper_example_renders_all_platforms(self):
        system = sensor_fusion_system()
        trace = simulate(
            system,
            config=SimulationConfig(horizon=150.0, record_intervals=True),
        )
        chart = render_gantt(system, trace, end=150.0, width=75)
        assert "Pi1" in chart and "Pi3" in chart
        # Gamma_4 (glyph 4) must appear on the Pi3 row.
        pi3_row = next(ln for ln in chart.splitlines() if "Pi3" in ln)
        assert "4" in pi3_row

    def test_empty_window_rejected(self):
        system = varied_system()
        trace = simulate(
            system, config=SimulationConfig(horizon=20.0, record_intervals=True)
        )
        with pytest.raises(ValueError, match="empty window"):
            render_gantt(system, trace, start=5.0, end=5.0)
